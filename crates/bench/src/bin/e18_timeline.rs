//! E18 (extension) — the contention *profile* over time, as an ASCII
//! figure: the deterministic sort's opening root storm versus the §3
//! pipeline's flat sqrt(P) ceiling. This is the paper's §3 narrative in
//! one picture.
//!
//! Run: `cargo run --release -p bench --bin e18_timeline`

use bench::sparkline;
use pram::{failure::FailurePlan, SyncScheduler};
use wfsort::low_contention::LowContentionSorter;
use wfsort::{check_sorted_permutation, PramSorter, SortConfig, Workload};

fn main() {
    let n = 1024; // P = N, sqrt(P) = 32
    let keys = Workload::RandomPermutation.generate(n, 47);

    // Deterministic run with timeline.
    let sorter = PramSorter::new(SortConfig::new(n).seed(47));
    let mut prepared = sorter.prepare(&keys);
    prepared.machine.record_timeline(true);
    prepared
        .machine
        .run_with_failures(&mut SyncScheduler, &FailurePlan::new(), prepared.budget)
        .expect("sort completes");
    let out = prepared.layout.read_output(prepared.machine.memory());
    check_sorted_permutation(&keys, &out).expect("det sorted");
    let det_tl = prepared
        .machine
        .metrics()
        .timeline
        .clone()
        .expect("timeline on");

    // Low-contention run with timeline recorded into its report.
    let lc = LowContentionSorter::default()
        .sort_with_timeline(&keys)
        .expect("sort completes");
    check_sorted_permutation(&keys, &lc.sorted).expect("lc sorted");
    let lc_tl = lc.report.metrics.timeline.clone().expect("timeline on");

    let scale = det_tl.iter().copied().max().unwrap_or(1);
    let width = 96;
    println!("\n## E18: per-cycle max contention, N = P = {n} (shared scale, peak = {scale})\n");
    println!(
        "deterministic (§2), {} cycles, peak {}:",
        det_tl.len(),
        det_tl.iter().max().unwrap()
    );
    println!("  [{}]", sparkline(&det_tl, width, scale));
    println!(
        "\nlow-contention (§3), {} cycles, peak {}:",
        lc_tl.len(),
        lc_tl.iter().max().unwrap()
    );
    println!("  [{}]", sparkline(&lc_tl, width, scale));
    println!(
        "\nReading the figure: the deterministic profile opens with a full-\
         height wall — every processor CASing the root (contention ~ P) — \
         then decays as the tree fans out. The low-contention profile \
         never leaves the bottom band (~sqrt(P)): group roots, fat-tree \
         duplicates and random probing keep every cycle's worst cell \
         cold. Same input, same output, same machine."
    );
}
