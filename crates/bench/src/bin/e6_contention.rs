//! E6 — the §3 headline: the deterministic sort suffers `O(P)` contention
//! (everyone storms the root at the start); the randomized
//! low-contention variant keeps it `O(sqrt(P))` w.h.p.
//!
//! Run: `cargo run --release -p bench --bin e6_contention`

use bench::{f2, Table};
use wfsort::low_contention::LowContentionSorter;
use wfsort::{check_sorted_permutation, PramSorter, SortConfig, Workload};

fn main() {
    let mut t = Table::new(&[
        "N = P",
        "det. contention",
        "det./P",
        "LC contention",
        "LC/sqrt(P)",
        "det. stalls/cyc",
        "LC stalls/cyc",
    ]);
    for k in [2u32, 3, 4, 5] {
        let n = 1usize << (2 * k); // 4^k so the LC sorter accepts it
        let keys = Workload::RandomPermutation.generate(n, 17);

        let det = PramSorter::new(SortConfig::new(n).seed(17))
            .sort(&keys)
            .expect("deterministic sort completes");
        check_sorted_permutation(&keys, &det.sorted).expect("det sorted");

        let lc = LowContentionSorter::default()
            .sort(&keys)
            .expect("LC sort completes");
        check_sorted_permutation(&keys, &lc.sorted).expect("lc sorted");

        let sqrt_p = (n as f64).sqrt();
        t.row(vec![
            n.to_string(),
            det.report.metrics.max_contention.to_string(),
            f2(det.report.metrics.max_contention as f64 / n as f64),
            lc.report.metrics.max_contention.to_string(),
            f2(lc.report.metrics.max_contention as f64 / sqrt_p),
            f2(det.report.metrics.amortized_stalls_per_cycle()),
            f2(lc.report.metrics.amortized_stalls_per_cycle()),
        ]);
    }
    t.print("E6a: contention, deterministic vs low-contention sort (P = N)");

    // P < N: the "extending it to other cases is straightforward" case.
    let p = 64;
    let mut b = Table::new(&["N (P=64)", "det. contention", "LC contention", "sqrt(P)"]);
    for n in [64usize, 256, 1024, 4096] {
        let keys = Workload::RandomPermutation.generate(n, 19);
        let det = PramSorter::new(SortConfig::new(p).seed(19))
            .sort(&keys)
            .expect("deterministic sort completes");
        check_sorted_permutation(&keys, &det.sorted).expect("det sorted");
        let lc = LowContentionSorter::default()
            .sort_with_processors(&keys, p)
            .expect("LC sort completes");
        check_sorted_permutation(&keys, &lc.sorted).expect("lc sorted");
        b.row(vec![
            n.to_string(),
            det.report.metrics.max_contention.to_string(),
            lc.report.metrics.max_contention.to_string(),
            "8".into(),
        ]);
    }
    b.print("E6b: fixed P = 64, growing N (P < N generalization)");
    println!(
        "\nPaper claim: O(P) for the §2 algorithm (all P processors CAS \
         at the root), O(sqrt(P)) w.h.p. for the §3 variant. Shape \
         checks: 'det./P' stays near 1.0 (the root storm); 'LC/sqrt(P)' \
         stays bounded as P grows; the gap widens with P."
    );
}
