//! E16 (extension) — the paper's second open problem (§4): the
//! omnipotent adversary can always force O(P) contention onto a
//! wait-free algorithm (Dwork–Herlihy–Waarts), so how does the
//! contention-reduced variant behave against *weaker*, realistic
//! adversaries? We measure the §3 sort's contention under oblivious
//! schedulers of decreasing synchrony.
//!
//! Run: `cargo run --release -p bench --bin e16_weak_adversary`

use bench::{f2, mean, Table};
use pram::{failure::FailurePlan, RandomScheduler, RoundRobinScheduler, Scheduler, SyncScheduler};
use wfsort::low_contention::LowContentionSorter;
use wfsort::{check_sorted_permutation, Workload};

fn contention(keys: &[i64], sched: &mut dyn Scheduler) -> (f64, f64) {
    let outcome = LowContentionSorter::default()
        .sort_under(keys, sched, &FailurePlan::new())
        .expect("sort completes");
    check_sorted_permutation(keys, &outcome.sorted).expect("sorted");
    (
        outcome.report.metrics.max_contention as f64,
        outcome.report.metrics.amortized_stalls_per_cycle(),
    )
}

fn main() {
    let n = 1024; // P = N, sqrt(P) = 32
    let trials = 3;
    let keys = Workload::RandomPermutation.generate(n, 43);

    let mut t = Table::new(&[
        "adversary (scheduler)",
        "max contention (mean)",
        "stalls/cycle (mean)",
        "sqrt(P)",
    ]);
    let mut push = |name: &str, xs: Vec<(f64, f64)>| {
        let c: Vec<f64> = xs.iter().map(|x| x.0).collect();
        let s: Vec<f64> = xs.iter().map(|x| x.1).collect();
        t.row(vec![
            name.to_string(),
            f2(mean(&c)),
            f2(mean(&s)),
            "32.00".into(),
        ]);
    };

    push(
        "synchronous (strongest oblivious)",
        (0..trials)
            .map(|_| contention(&keys, &mut SyncScheduler))
            .collect(),
    );
    for prob in [0.5, 0.2] {
        push(
            &format!("random stalls, step prob {prob}"),
            (0..trials)
                .map(|s| contention(&keys, &mut RandomScheduler::new(s as u64, prob)))
                .collect(),
        );
    }
    for width in [256usize, 64] {
        push(
            &format!("bounded parallelism, {width} of 1024 per cycle"),
            (0..trials)
                .map(|s| contention(&keys, &mut RoundRobinScheduler::new(s as u64, width)))
                .collect(),
        );
    }
    t.print(&format!(
        "E16: §3 sort contention vs weak adversaries, N = P = {n}"
    ));
    println!(
        "\nFinding: against every oblivious adversary tested, contention \
         stays at or *below* the synchronous case's sqrt(P) — stalling \
         processors desynchronizes the arrival waves, which only thins \
         out per-cycle pile-ups. The omnipotent-adversary O(P) lower \
         bound (Dwork et al., cited in §4) needs the adversary to *watch \
         coin flips* and re-align processors; obliviousness is exactly \
         what it loses. This is measured support for the paper's closing \
         conjecture."
    );
}
