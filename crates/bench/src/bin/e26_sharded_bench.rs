//! E26 — the sharded large-N path raced against the single pivot tree:
//! sharded-vs-single throughput with the permutation-parity check run
//! inline (the differential claim is *in* the artifact, not asserted
//! from memory), per-configuration shard balance under the
//! deterministic splitter sample, and the single-threaded counter pins
//! that make the sharded phases' claim traffic exact, persisted as the
//! schema-stable `BENCH_sharded.json` perf artifact.
//!
//! The sharded path ([`wfsort_native::ShardedSortJob`]) samples
//! `O(S log S)` keys for `S - 1` splitters, classifies elements against
//! them, buckets each shard contiguously, and sorts every shard with
//! its own small packed pivot tree — so at large `n` the root cache
//! line of one global tree stops being the whole machine's rendezvous
//! point. Because the bucket fill preserves original-index order within
//! each shard, the sharded permutation is *identical* to the
//! single-tree one, ties and all; every comparison row re-proves that.
//!
//! Run: `cargo run --release -p bench --bin e26_sharded_bench`
//! CI smoke: `... e26_sharded_bench -- --quick`
//! Schema gate: `... e26_sharded_bench -- --validate <path>`
//!
//! When `BENCH_OUTPUT_DIR` is set, a missing or invalid artifact is a
//! hard error (exit 1), not a warning — CI depends on the file.

use std::process::ExitCode;

use bench::json::SHARDED_SCHEMA;
use bench::{f2, timed, validate_sharded_bench, write_artifact, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wfsort_native::{recommended_grain, NativeAllocation, ShardedSortJob, SortJob, WaitFreeSorter};

/// The swept input shapes (the E24/E25 trio): uniform random keys,
/// few-distinct keys (splitter duplicates force empty shards), and a
/// sawtooth (periodic — the adversarial case for a strided sample).
fn shapes(n: usize) -> Vec<(&'static str, Vec<u64>)> {
    let mut rng = StdRng::seed_from_u64(26);
    let uniform: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
    let few: Vec<u64> = (0..n).map(|_| rng.gen_range(0..64)).collect();
    let sawtooth: Vec<u64> = (0..n).map(|i| (i % 1009) as u64).collect();
    vec![
        ("uniform-random", uniform),
        ("few-distinct", few),
        ("sawtooth", sawtooth),
    ]
}

/// Is `perm` (1-based indices into `keys`) a sorted order of `keys`?
fn perm_is_sorted(keys: &[u64], perm: &[usize]) -> bool {
    perm.len() == keys.len() && perm.windows(2).all(|w| keys[w[0] - 1] <= keys[w[1] - 1])
}

/// Best-of-`repeats` wall time for the sharded path, plus the last
/// run's permutation (deterministic, so every repeat computes the same
/// one) and whether every run's output was sorted.
fn time_sharded(
    keys: &[u64],
    threads: usize,
    shards: usize,
    repeats: usize,
) -> (f64, Vec<usize>, bool) {
    let sorter = WaitFreeSorter::new(threads);
    let mut best = f64::INFINITY;
    let mut perm = Vec::new();
    let mut ok = true;
    for _ in 0..repeats {
        let job = ShardedSortJob::with_workers(
            keys.to_vec(),
            NativeAllocation::Deterministic,
            threads,
            shards,
        );
        let (_, secs) = timed(|| sorter.run_sharded_job(&job));
        perm = job.permutation();
        ok &= perm_is_sorted(keys, &perm);
        best = best.min(secs);
    }
    (best, perm, ok)
}

/// The same measurement through the single-tree path, grain matched to
/// the sorter's recommendation so the comparison is tuned-vs-tuned.
fn time_single(keys: &[u64], threads: usize, repeats: usize) -> (f64, Vec<usize>, bool) {
    let sorter = WaitFreeSorter::new(threads);
    let grain = recommended_grain(keys.len(), threads);
    let mut best = f64::INFINITY;
    let mut perm = Vec::new();
    let mut ok = true;
    for _ in 0..repeats {
        let job = SortJob::with_grain(
            keys.to_vec(),
            NativeAllocation::Deterministic,
            threads,
            grain,
        );
        let (_, secs) = timed(|| sorter.run_job(&job));
        perm = job.permutation();
        ok &= perm_is_sorted(keys, &perm);
        best = best.min(secs);
    }
    (best, perm, ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if let Some(at) = args.iter().position(|a| a == "--validate") {
        let path = match args.get(at + 1) {
            Some(p) => p,
            None => {
                eprintln!("--validate needs a path");
                return ExitCode::FAILURE;
            }
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: could not read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match validate_sharded_bench(&text) {
            Ok(entries) => {
                println!("{path}: valid {SHARDED_SCHEMA} with {entries} entries");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let quick = args.iter().any(|a| a == "--quick");
    let n = if quick { 20_000 } else { 100_000 };
    let thread_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let shard_counts: &[usize] = if quick { &[8, 64] } else { &[8, 64, 256] };
    let repeats = if quick { 3 } else { 5 };

    // E26a — sharded vs single-tree throughput, with the permutation
    // parity re-proved on every row. Speedup = single/sharded, so > 1
    // means sharding won.
    let mut comparison = Vec::new();
    let mut a = Table::new(&[
        "shape",
        "threads",
        "shards",
        "sharded ms",
        "single ms",
        "speedup",
    ]);
    let mut sharded_losses = 0usize;
    for (shape, keys) in shapes(n) {
        for &threads in thread_counts {
            let (single_ms, single_perm, single_ok) = time_single(&keys, threads, repeats);
            assert!(
                single_ok,
                "single-tree output unsorted at {threads}x{shape}"
            );
            for &shards in shard_counts {
                let (sharded_ms, sharded_perm, sharded_ok) =
                    time_sharded(&keys, threads, shards, repeats);
                assert!(
                    sharded_ok,
                    "sharded output unsorted at {threads}x{shards}x{shape}"
                );
                assert_eq!(
                    sharded_perm, single_perm,
                    "permutation mismatch at {threads}x{shards}x{shape}"
                );
                let speedup = single_ms / sharded_ms;
                if speedup < 1.0 {
                    sharded_losses += 1;
                }
                a.row(vec![
                    shape.into(),
                    threads.to_string(),
                    shards.to_string(),
                    f2(sharded_ms * 1e3),
                    f2(single_ms * 1e3),
                    format!("{speedup:.2}x"),
                ]);
                comparison.push(format!(
                    concat!(
                        "{{\"shape\":\"{}\",\"n\":{},\"threads\":{},\"shards\":{},",
                        "\"sharded_ms\":{:.3},\"single_ms\":{:.3},\"speedup\":{:.3},",
                        "\"sharded_sorted\":true,\"single_sorted\":true,",
                        "\"permutation_match\":true}}"
                    ),
                    shape,
                    n,
                    threads,
                    shards,
                    sharded_ms * 1e3,
                    single_ms * 1e3,
                    speedup,
                ));
            }
        }
    }
    a.print(&format!(
        "E26a: sharded vs single-tree at N = {n} (best of {repeats}; \
         speedup = single/sharded; every row's permutations matched \
         element-for-element)"
    ));
    if sharded_losses > 0 {
        eprintln!(
            "warning: sharded slower than single-tree on {sharded_losses} \
             configuration(s) — expected at small n/S or on a 1-CPU host \
             where threads timeslice; the counter pins below are the \
             load-bearing columns"
        );
    }

    // E26b — shard balance under the deterministic strided sample.
    // Sizes are a pure function of (keys, shards), so one run per
    // configuration is exact; imbalance is max/ideal (1.0 = perfect).
    let n_balance = if quick { 20_000 } else { 50_000 };
    let mut balance = Vec::new();
    let mut b = Table::new(&["shape", "shards", "max shard", "ideal", "imbalance"]);
    for (shape, keys) in shapes(n_balance) {
        for &shards in shard_counts {
            let (sorted, report) = WaitFreeSorter::new(1).sort_sharded_with_report(&keys, shards);
            assert!(
                sorted.windows(2).all(|w| w[0] <= w[1]),
                "balance run unsorted at {shards}x{shape}"
            );
            let shard = report.shard.as_ref().expect("sharded report");
            let max_shard = shard.per_shard.iter().map(|s| s.size).max().unwrap_or(0);
            let sizes_sum: usize = shard.per_shard.iter().map(|s| s.size).sum();
            assert_eq!(sizes_sum, n_balance, "shard sizes must cover n");
            b.row(vec![
                shape.into(),
                shards.to_string(),
                max_shard.to_string(),
                (n_balance / shards).max(1).to_string(),
                format!("{:.2}x", shard.imbalance()),
            ]);
            balance.push(format!(
                concat!(
                    "{{\"shape\":\"{}\",\"n\":{},\"shards\":{},",
                    "\"max_shard\":{},\"sizes_sum\":{},\"imbalance\":{:.4}}}"
                ),
                shape,
                n_balance,
                shards,
                max_shard,
                sizes_sum,
                shard.imbalance(),
            ));
        }
    }
    b.print(&format!(
        "E26b: shard balance at N = {n_balance} (deterministic splitter \
         sample; imbalance = max/ideal, 1.0 is perfect; few-distinct \
         keys legitimately skew — equal keys are never separated)"
    ));

    // E26c — single-threaded counter pins across the acceptance sweep
    // S ∈ {1, 2, 8, 64}. One crash-free worker claims every unit
    // exactly once, so each count is a closed-form function of
    // (n, grain, shards) that the validator recomputes.
    let n_pins = 4096usize;
    let pin_keys: Vec<u64> = {
        let mut rng = StdRng::seed_from_u64(2626);
        (0..n_pins).map(|_| rng.gen()).collect()
    };
    let mut counter_pins = Vec::new();
    let mut c = Table::new(&[
        "shards",
        "pgrain",
        "blocks",
        "partition claims",
        "fill claims",
        "shard claims",
    ]);
    for shards in [1usize, 2, 8, 64] {
        let (sorted, report) = WaitFreeSorter::new(1).sort_sharded_with_report(&pin_keys, shards);
        assert!(
            sorted.windows(2).all(|w| w[0] <= w[1]),
            "pin run unsorted at {shards} shards"
        );
        let shard = report.shard.as_ref().expect("sharded report");
        let p = &report.per_phase;
        assert_eq!(p.partition.claims, n_pins as u64, "one claim per element");
        assert_eq!(
            p.partition.block_claims, shard.partition_blocks as u64,
            "one block claim per partition block"
        );
        assert_eq!(
            p.fill.claims, shard.partition_blocks as u64,
            "the fill phase claims partition blocks"
        );
        assert_eq!(p.shard_sort.claims, shards as u64, "one claim per shard");
        c.row(vec![
            shards.to_string(),
            shard.partition_grain.to_string(),
            shard.partition_blocks.to_string(),
            p.partition.claims.to_string(),
            p.fill.claims.to_string(),
            p.shard_sort.claims.to_string(),
        ]);
        counter_pins.push(format!(
            concat!(
                "{{\"n\":{},\"shards\":{},\"partition_grain\":{},",
                "\"partition_blocks\":{},\"partition_claims\":{},",
                "\"partition_block_claims\":{},\"fill_claims\":{},",
                "\"shard_sort_claims\":{},\"sorted\":true}}"
            ),
            n_pins,
            shards,
            shard.partition_grain,
            shard.partition_blocks,
            p.partition.claims,
            p.partition.block_claims,
            p.fill.claims,
            p.shard_sort.claims,
        ));
    }
    c.print(&format!(
        "E26c: single-threaded claim pins at N = {n_pins} (deterministic \
         runs are exact; the validator recomputes every column)"
    ));

    let artifact = format!(
        "{{\"schema\":\"{SHARDED_SCHEMA}\",\"experiment\":\"e26_sharded_bench\",\
         \"quick\":{quick},\
         \"comparison\":[\n{}\n],\
         \"balance\":[\n{}\n],\
         \"counter_pins\":[\n{}\n]}}\n",
        comparison.join(",\n"),
        balance.join(",\n"),
        counter_pins.join(",\n"),
    );
    // Self-gate before writing: a malformed artifact must never land.
    if let Err(e) = validate_sharded_bench(&artifact) {
        eprintln!("error: generated artifact fails its own schema: {e}");
        return ExitCode::FAILURE;
    }
    if std::env::var_os("BENCH_OUTPUT_DIR").is_some() {
        match write_artifact("BENCH_sharded.json", &artifact) {
            Some(path) => match std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|t| validate_sharded_bench(&t).map_err(|e| e.to_string()))
            {
                Ok(entries) => {
                    println!("\nBENCH_sharded.json: {entries} entries, schema {SHARDED_SCHEMA}")
                }
                Err(e) => {
                    eprintln!("error: written artifact failed re-validation: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => {
                eprintln!("error: BENCH_OUTPUT_DIR is set but the artifact was not written");
                return ExitCode::FAILURE;
            }
        }
    } else {
        eprintln!("(BENCH_OUTPUT_DIR unset: BENCH_sharded.json not persisted)");
    }

    println!(
        "\nPaper tie-in (§1.2): the paper's O(N log N / P) bound charges \
         every element a descent through one shared tree, so the root is \
         a contention point the moment P stops scaling with N. Splitter \
         sharding in front of the tree (Axtmann–Sanders style) turns one \
         global rendezvous into S independent small trees while the WAT \
         machinery keeps the fault story: a crashed worker's shard is \
         redone whole by survivors. Timings above are from a single \
         shared host; the permutation-parity and counter-pin columns are \
         the load-bearing ones."
    );
    ExitCode::SUCCESS
}
