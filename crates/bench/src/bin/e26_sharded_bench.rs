//! E26 — the sharded large-N path raced against the single pivot tree:
//! sharded-vs-single throughput with the permutation-parity check run
//! inline (the differential claim is *in* the artifact, not asserted
//! from memory), per-configuration shard balance, single-threaded
//! counter pins that make the sharded phases' claim traffic exact, and
//! the E26d/E28 adversarial-shape battery proving the duplicate-robust
//! partitioner holds `imbalance ≤ τ` on the shapes that break naive
//! splitter sampling, the E26e/E29 classify-kernel A/B with the
//! fused-histogram Fill-entry pin, and the E26f/E30 partition-strategy
//! A/B pinning the in-place exchange's `aux_bytes ≤ B·P·8` cap and its
//! strictly-smaller memory-traffic ledger — persisted as the
//! schema-stable `BENCH_sharded.json` (v4) perf artifact.
//!
//! The sharded path ([`wfsort_native::ShardedSortJob`]) oversamples
//! `S · overpartition_factor` splitter candidates, deduplicates them,
//! and classifies elements into strictly-ordered range pieces plus an
//! explicit *equality bucket* per surviving splitter — so a duplicate
//! flood lands in chunkable equality buckets instead of one overloaded
//! shard. Buckets are assigned to shards greedily by measured size
//! (LPT), and each shard sorts its units with its own small packed
//! pivot tree (or a straight copy for equality/pre-sorted units). The
//! bucket fill preserves original-index order, so the sharded
//! permutation is *identical* to the single-tree one, ties and all;
//! every comparison row re-proves that.
//!
//! All swept inputs come from [`wait_free_sort::testshapes`], the same
//! battery the parity and property suites use.
//!
//! Run: `cargo run --release -p bench --bin e26_sharded_bench`
//! CI smoke: `... e26_sharded_bench -- --quick`
//! Schema gate: `... e26_sharded_bench -- --validate <path>`
//!
//! When `BENCH_OUTPUT_DIR` is set, a missing or invalid artifact is a
//! hard error (exit 1), not a warning — CI depends on the file.

use std::process::ExitCode;

use bench::json::SHARDED_SCHEMA;
use bench::{f2, timed, validate_sharded_bench, write_artifact, Table};
use wait_free_sort::testshapes;
use wfsort_native::{
    piece_by_search, recommended_grain, ClassifyKernel, MetricSlot, NativeAllocation,
    PartitionStrategy, RunToCompletion, ShardConfig, ShardedSortJob, SortJob, SortOptions,
    SplitterLadder, WaitFreeSorter,
};

/// The throughput-sweep trio (the E24/E25 lineage, now drawn from the
/// shared battery): uniform random keys, few-distinct keys (splitter
/// duplicates force equality buckets), and a sawtooth (periodic — the
/// adversarial case for a strided sample).
fn shapes(n: usize) -> Vec<(&'static str, Vec<u64>)> {
    vec![
        ("uniform-random", testshapes::uniform(n, 26)),
        ("few-distinct", testshapes::few_distinct(n, 64, 26)),
        ("sawtooth", testshapes::sawtooth(n, 1009)),
    ]
}

/// The E26d robustness battery: the three acceptance shapes from the
/// duplicate-robust partitioning work — a total duplicate flood, heavy
/// Zipf(1.0) skew, and a pre-sorted ramp.
fn adversarial_shapes(n: usize) -> Vec<(&'static str, Vec<u64>)> {
    vec![
        ("all-equal", testshapes::all_equal(n)),
        ("zipf-1.0", testshapes::zipf(n, 1024, 7)),
        ("pre-sorted", testshapes::presorted(n)),
    ]
}

/// Is `perm` (1-based indices into `keys`) a sorted order of `keys`?
fn perm_is_sorted(keys: &[u64], perm: &[usize]) -> bool {
    perm.len() == keys.len() && perm.windows(2).all(|w| keys[w[0] - 1] <= keys[w[1] - 1])
}

/// The stable `(key, original index)` permutation — the analytic oracle
/// every sort path in this repo must reproduce exactly. 1-based, like
/// the jobs' `permutation()`.
fn stable_permutation(keys: &[u64]) -> Vec<usize> {
    let mut perm: Vec<usize> = (1..=keys.len()).collect();
    perm.sort_by_key(|&i| (keys[i - 1], i));
    perm
}

/// Best-of-`repeats` wall time for the sharded path, plus the last
/// run's permutation (deterministic, so every repeat computes the same
/// one) and whether every run's output was sorted.
fn time_sharded(
    keys: &[u64],
    threads: usize,
    shards: usize,
    repeats: usize,
) -> (f64, Vec<usize>, bool) {
    let sorter = WaitFreeSorter::new(threads);
    let mut best = f64::INFINITY;
    let mut perm = Vec::new();
    let mut ok = true;
    for _ in 0..repeats {
        let job = ShardedSortJob::with_workers(
            keys.to_vec(),
            NativeAllocation::Deterministic,
            threads,
            shards,
        );
        let (_, secs) = timed(|| sorter.run_sharded_job(&job));
        perm = job.permutation();
        ok &= perm_is_sorted(keys, &perm);
        best = best.min(secs);
    }
    (best, perm, ok)
}

/// The same measurement through the single-tree path, grain matched to
/// the sorter's recommendation so the comparison is tuned-vs-tuned.
fn time_single(keys: &[u64], threads: usize, repeats: usize) -> (f64, Vec<usize>, bool) {
    let sorter = WaitFreeSorter::new(threads);
    let grain = recommended_grain(keys.len(), threads);
    let mut best = f64::INFINITY;
    let mut perm = Vec::new();
    let mut ok = true;
    for _ in 0..repeats {
        let job = SortJob::with_grain(
            keys.to_vec(),
            NativeAllocation::Deterministic,
            threads,
            grain,
        );
        let (_, secs) = timed(|| sorter.run_job(&job));
        perm = job.permutation();
        ok &= perm_is_sorted(keys, &perm);
        best = best.min(secs);
    }
    (best, perm, ok)
}

/// Best-of-`repeats` single-threaded wall time for the sharded path
/// with `kernel` forced on, plus the (deterministic) permutation and
/// whether every run's output was sorted. Single-threaded on purpose:
/// the kernel A/B is a superscalar-throughput question, and on this
/// repo's 1-CPU reference host multi-thread timings measure the
/// timeslicer, not the kernel.
/// One full single-threaded sharded sort under `kernel`, for the E26e
/// parity columns: the permutation it produced and whether that
/// permutation sorts `keys`. Untimed — end-to-end sort time is
/// dominated by the per-shard sorts, whose run-to-run noise would
/// swamp the kernel delta the A/B exists to measure.
fn sort_with(keys: &[u64], shards: usize, kernel: ClassifyKernel) -> (Vec<usize>, bool) {
    let job = ShardedSortJob::with_config(
        keys.to_vec(),
        NativeAllocation::Deterministic,
        1,
        shards,
        ShardConfig {
            classify_kernel: kernel,
            ..ShardConfig::default()
        },
    );
    job.run();
    let perm = job.permutation();
    let ok = perm_is_sorted(keys, &perm);
    (perm, ok)
}

/// Best-of-`repeats` time for one classification pass over all of
/// `keys` against a real job's sampled `splitters` — the work the
/// kernel knob actually changes. The ladder arm replicates the block
/// kernel's interleaved walk (8 lanes through
/// [`SplitterLadder::piece_for_lanes`], per-key tail); the baseline is
/// the per-key [`piece_by_search`]. Piece ids are accumulated and
/// black-boxed so neither pass can be optimized away.
fn time_classify(keys: &[u64], splitters: &[u64], kernel: ClassifyKernel, repeats: usize) -> f64 {
    let ladder = SplitterLadder::new(splitters);
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let mut acc = 0usize;
        let (_, secs) = timed(|| match kernel {
            ClassifyKernel::Ladder => {
                let chunks = keys.chunks_exact(8);
                let tail = chunks.remainder();
                for chunk in chunks {
                    let lanes: [&u64; 8] = std::array::from_fn(|j| &chunk[j]);
                    for piece in ladder.piece_for_lanes(lanes) {
                        acc += piece;
                    }
                }
                for key in tail {
                    acc += ladder.piece_for(key);
                }
            }
            _ => {
                for key in keys {
                    acc += piece_by_search(splitters, key);
                }
            }
        });
        std::hint::black_box(acc);
        best = best.min(secs);
    }
    best
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if let Some(at) = args.iter().position(|a| a == "--validate") {
        let path = match args.get(at + 1) {
            Some(p) => p,
            None => {
                eprintln!("--validate needs a path");
                return ExitCode::FAILURE;
            }
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: could not read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match validate_sharded_bench(&text) {
            Ok(entries) => {
                println!("{path}: valid {SHARDED_SCHEMA} with {entries} entries");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let quick = args.iter().any(|a| a == "--quick");
    let n = if quick { 20_000 } else { 100_000 };
    let thread_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let shard_counts: &[usize] = if quick { &[8, 64] } else { &[8, 64, 256] };
    let repeats = if quick { 3 } else { 5 };

    // E26a — sharded vs single-tree throughput, with the permutation
    // parity re-proved on every row. Speedup = single/sharded, so > 1
    // means sharding won.
    let mut comparison = Vec::new();
    let mut a = Table::new(&[
        "shape",
        "threads",
        "shards",
        "sharded ms",
        "single ms",
        "speedup",
    ]);
    let mut sharded_losses = 0usize;
    for (shape, keys) in shapes(n) {
        for &threads in thread_counts {
            let (single_ms, single_perm, single_ok) = time_single(&keys, threads, repeats);
            assert!(
                single_ok,
                "single-tree output unsorted at {threads}x{shape}"
            );
            for &shards in shard_counts {
                let (sharded_ms, sharded_perm, sharded_ok) =
                    time_sharded(&keys, threads, shards, repeats);
                assert!(
                    sharded_ok,
                    "sharded output unsorted at {threads}x{shards}x{shape}"
                );
                assert_eq!(
                    sharded_perm, single_perm,
                    "permutation mismatch at {threads}x{shards}x{shape}"
                );
                let speedup = single_ms / sharded_ms;
                if speedup < 1.0 {
                    sharded_losses += 1;
                }
                a.row(vec![
                    shape.into(),
                    threads.to_string(),
                    shards.to_string(),
                    f2(sharded_ms * 1e3),
                    f2(single_ms * 1e3),
                    format!("{speedup:.2}x"),
                ]);
                comparison.push(format!(
                    concat!(
                        "{{\"shape\":\"{}\",\"n\":{},\"threads\":{},\"shards\":{},",
                        "\"sharded_ms\":{:.3},\"single_ms\":{:.3},\"speedup\":{:.3},",
                        "\"sharded_sorted\":true,\"single_sorted\":true,",
                        "\"permutation_match\":true}}"
                    ),
                    shape,
                    n,
                    threads,
                    shards,
                    sharded_ms * 1e3,
                    single_ms * 1e3,
                    speedup,
                ));
            }
        }
    }
    a.print(&format!(
        "E26a: sharded vs single-tree at N = {n} (best of {repeats}; \
         speedup = single/sharded; every row's permutations matched \
         element-for-element)"
    ));
    if sharded_losses > 0 {
        eprintln!(
            "warning: sharded slower than single-tree on {sharded_losses} \
             configuration(s) — expected at small n/S or on a 1-CPU host \
             where threads timeslice; the counter pins below are the \
             load-bearing columns"
        );
    }

    // E26b — shard balance under the deterministic overpartitioned
    // sample. Sizes are a pure function of (keys, shards, config), so
    // one run per configuration is exact; imbalance is max/ideal
    // (1.0 = perfect).
    let n_balance = if quick { 20_000 } else { 50_000 };
    let mut balance = Vec::new();
    let mut b = Table::new(&["shape", "shards", "max shard", "ideal", "imbalance"]);
    for (shape, keys) in shapes(n_balance) {
        for &shards in shard_counts {
            let (sorted, report) = WaitFreeSorter::new(1).sort_sharded_with_report(&keys, shards);
            assert!(
                sorted.windows(2).all(|w| w[0] <= w[1]),
                "balance run unsorted at {shards}x{shape}"
            );
            let shard = report.shard.as_ref().expect("sharded report");
            let max_shard = shard.per_shard.iter().map(|s| s.size).max().unwrap_or(0);
            let sizes_sum: usize = shard.per_shard.iter().map(|s| s.size).sum();
            assert_eq!(sizes_sum, n_balance, "shard sizes must cover n");
            b.row(vec![
                shape.into(),
                shards.to_string(),
                max_shard.to_string(),
                (n_balance / shards).max(1).to_string(),
                format!("{:.2}x", shard.imbalance()),
            ]);
            balance.push(format!(
                concat!(
                    "{{\"shape\":\"{}\",\"n\":{},\"shards\":{},",
                    "\"max_shard\":{},\"sizes_sum\":{},\"imbalance\":{:.4}}}"
                ),
                shape,
                n_balance,
                shards,
                max_shard,
                sizes_sum,
                shard.imbalance(),
            ));
        }
    }
    b.print(&format!(
        "E26b: shard balance at N = {n_balance} (deterministic \
         overpartitioned splitter sample; imbalance = max/ideal, 1.0 is \
         perfect; duplicate-heavy shapes stay bounded because equal keys \
         land in chunkable equality buckets)"
    ));

    // E26c — single-threaded counter pins across the acceptance sweep
    // S ∈ {1, 2, 8, 64}. One crash-free worker claims every unit
    // exactly once, so each count is a closed-form function of
    // (n, grain, shards) that the validator recomputes.
    let n_pins = 4096usize;
    let pin_keys = testshapes::uniform(n_pins, 2626);
    let mut counter_pins = Vec::new();
    let mut c = Table::new(&[
        "shards",
        "pgrain",
        "blocks",
        "partition claims",
        "fill claims",
        "shard claims",
    ]);
    for shards in [1usize, 2, 8, 64] {
        let (sorted, report) = WaitFreeSorter::new(1).sort_sharded_with_report(&pin_keys, shards);
        assert!(
            sorted.windows(2).all(|w| w[0] <= w[1]),
            "pin run unsorted at {shards} shards"
        );
        let shard = report.shard.as_ref().expect("sharded report");
        let p = &report.per_phase;
        assert_eq!(p.partition.claims, n_pins as u64, "one claim per element");
        assert_eq!(
            p.partition.block_claims, shard.partition_blocks as u64,
            "one block claim per partition block"
        );
        assert_eq!(
            p.fill.claims, shard.partition_blocks as u64,
            "the fill phase claims partition blocks"
        );
        assert_eq!(p.shard_sort.claims, shards as u64, "one claim per shard");
        c.row(vec![
            shards.to_string(),
            shard.partition_grain.to_string(),
            shard.partition_blocks.to_string(),
            p.partition.claims.to_string(),
            p.fill.claims.to_string(),
            p.shard_sort.claims.to_string(),
        ]);
        counter_pins.push(format!(
            concat!(
                "{{\"n\":{},\"shards\":{},\"partition_grain\":{},",
                "\"partition_blocks\":{},\"partition_claims\":{},",
                "\"partition_block_claims\":{},\"fill_claims\":{},",
                "\"shard_sort_claims\":{},\"sorted\":true}}"
            ),
            n_pins,
            shards,
            shard.partition_grain,
            shard.partition_blocks,
            p.partition.claims,
            p.partition.block_claims,
            p.fill.claims,
            p.shard_sort.claims,
        ));
    }
    c.print(&format!(
        "E26c: single-threaded claim pins at N = {n_pins} (deterministic \
         runs are exact; the validator recomputes every column)"
    ));

    // E26d — the adversarial robustness battery (EXPERIMENTS.md E28).
    // Every acceptance shape at the acceptance size must come in under
    // the default balance target τ = 2.0 *and* reproduce the stable
    // `(key, index)` permutation bit-for-bit. These are asserts, not
    // table-only observations: a regression aborts the run.
    //
    // The oracle chain: at `cross_n` the real single-tree job is run and
    // pinned equal to the analytic stable permutation (pre-sorted and
    // all-equal inputs are the single tree's quadratic worst case, so
    // the full-size check uses the oracle instead of an hours-long
    // monotone-insert run; tests/sharded_parity.rs pins the same
    // equivalence independently).
    let n_adversarial = if quick { 20_000 } else { 1_000_000 };
    let adv_threads = if quick { 2 } else { 4 };
    let cross_n = 20_000;
    for (shape, keys) in adversarial_shapes(cross_n) {
        let single = SortJob::new(keys.clone());
        single.run();
        assert_eq!(
            single.permutation(),
            stable_permutation(&keys),
            "single-tree vs stable oracle at {shape} n={cross_n}"
        );
    }
    let mut adversarial = Vec::new();
    let mut d = Table::new(&[
        "shape",
        "shards",
        "eq buckets",
        "buckets",
        "max shard",
        "imbalance",
        "τ",
    ]);
    for (shape, keys) in adversarial_shapes(n_adversarial) {
        let oracle = stable_permutation(&keys);
        for &shards in &[8usize, 64] {
            let outcome = SortOptions::new()
                .threads(adv_threads)
                .shards(shards)
                .report(true)
                .run(&keys);
            assert_eq!(
                outcome.permutation, oracle,
                "sharded vs single-tree permutation at {shape} S={shards}"
            );
            let report = outcome.report.expect("report requested");
            let shard = report.shard.expect("sharded report");
            let imbalance = shard.imbalance();
            assert!(
                imbalance <= shard.requested_imbalance,
                "{shape} S={shards}: imbalance {imbalance:.2} exceeds \
                 requested {:.2}",
                shard.requested_imbalance
            );
            assert!(shard.within_requested(), "{shape} S={shards}");
            let max_shard = shard.per_shard.iter().map(|s| s.size).max().unwrap_or(0);
            d.row(vec![
                shape.into(),
                shards.to_string(),
                shard.equality_buckets.to_string(),
                shard.buckets.len().to_string(),
                max_shard.to_string(),
                format!("{imbalance:.2}x"),
                format!("{:.1}", shard.requested_imbalance),
            ]);
            adversarial.push(format!(
                concat!(
                    "{{\"shape\":\"{}\",\"n\":{},\"shards\":{},",
                    "\"equality_buckets\":{},\"imbalance\":{:.4},",
                    "\"requested_imbalance\":{:.2},\"within_requested\":true,",
                    "\"permutation_match\":true}}"
                ),
                shape,
                n_adversarial,
                shards,
                shard.equality_buckets,
                imbalance,
                shard.requested_imbalance,
            ));
        }
    }
    d.print(&format!(
        "E26d: adversarial balance at N = {n_adversarial} (duplicate \
         floods and skew under the overpartitioned, deduplicated sampler; \
         every row asserted imbalance ≤ τ and permutation == stable \
         (key, index) oracle — itself pinned to the single tree at \
         N = {cross_n} above)"
    ));

    // E26e — classify-kernel A/B (EXPERIMENTS.md E29). Both kernels
    // sort the same keys single-threaded and their permutations are
    // asserted equal inline (the kernel is a pure throughput knob);
    // the timed columns then A/B one classification pass over all N
    // keys against the instrumented job's real sampled splitters —
    // the work the knob changes, isolated from per-shard sort noise.
    // The instrumented ladder run contributes the fused-histogram
    // telemetry the validator re-pins: `fill_setup_steps` must be
    // exactly B·P — the Fill-entry scan the fusion deleted was O(n).
    // In full mode the uniform rows are the acceptance gate: best-of
    // ladder time must not regress past the binary-search baseline.
    let n_classify = if quick { 20_000 } else { 1_000_000 };
    let classify_repeats = if quick { 2 } else { 5 };
    let mut classify = Vec::new();
    let mut e = Table::new(&[
        "shape",
        "shards",
        "splitters",
        "binary ms",
        "ladder ms",
        "speedup",
        "B·P setup",
    ]);
    for (shape, keys) in shapes(n_classify) {
        for &shards in &[8usize, 64] {
            let (binary_perm, binary_ok) = sort_with(&keys, shards, ClassifyKernel::BinarySearch);
            let (ladder_perm, ladder_ok) = sort_with(&keys, shards, ClassifyKernel::Ladder);
            assert!(
                binary_ok && ladder_ok,
                "kernel output unsorted at {shards}x{shape}"
            );
            assert_eq!(
                ladder_perm, binary_perm,
                "kernel permutation mismatch at {shards}x{shape}"
            );

            // One instrumented lone-worker run for the telemetry row
            // and the splitter set both timed passes walk.
            let job = ShardedSortJob::with_config(
                keys.to_vec(),
                NativeAllocation::Deterministic,
                1,
                shards,
                ShardConfig {
                    classify_kernel: ClassifyKernel::Ladder,
                    ..ShardConfig::default()
                },
            );
            let slot = MetricSlot::new();
            job.participate_instrumented(&mut RunToCompletion, &slot);
            let m = slot.snapshot();
            let (blocks, pieces) = (job.partition_blocks(), job.buckets());

            let binary_ms = time_classify(
                &keys,
                job.splitters(),
                ClassifyKernel::BinarySearch,
                classify_repeats,
            );
            let ladder_ms = time_classify(
                &keys,
                job.splitters(),
                ClassifyKernel::Ladder,
                classify_repeats,
            );
            let speedup = binary_ms / ladder_ms.max(f64::EPSILON);
            if !quick && shape == "uniform-random" {
                assert!(
                    speedup >= 1.0,
                    "{shape} S={shards}: ladder regressed to {speedup:.3}x of the \
                     binary-search baseline at N = {n_classify} (best of \
                     {classify_repeats})"
                );
            }
            assert_eq!(
                m.phases.fill.setup_steps,
                (blocks * pieces) as u64,
                "{shape} S={shards}: fill entry must reduce exactly the B·P table"
            );
            e.row(vec![
                shape.into(),
                shards.to_string(),
                ((pieces - 1) / 2).to_string(),
                f2(binary_ms * 1e3),
                f2(ladder_ms * 1e3),
                format!("{speedup:.2}x"),
                format!("{}·{}", blocks, pieces),
            ]);
            classify.push(format!(
                concat!(
                    "{{\"shape\":\"{}\",\"n\":{},\"shards\":{},\"splitters\":{},",
                    "\"buckets\":{},\"partition_blocks\":{},",
                    "\"binary_ms\":{:.3},\"ladder_ms\":{:.3},\"speedup\":{:.3},",
                    "\"kernel_blocks\":{},\"classify_steps\":{},",
                    "\"fill_setup_steps\":{},\"sorted\":true,",
                    "\"permutation_match\":true}}"
                ),
                shape,
                n_classify,
                shards,
                (pieces - 1) / 2,
                pieces,
                blocks,
                binary_ms * 1e3,
                ladder_ms * 1e3,
                speedup,
                m.phases.partition.kernel_blocks,
                m.phases.partition.classify_steps,
                m.phases.fill.setup_steps,
            ));
        }
    }
    e.print(&format!(
        "E26e: classify-kernel A/B at N = {n_classify} (one classification \
         pass over all N keys against the job's real splitters, best of \
         {classify_repeats}; speedup = binary/ladder, > 1 means the \
         interleaved ladder won; full sorts matched permutations; \
         fill-entry setup pinned at B·P)"
    ));

    // E26f — partition-strategy A/B (EXPERIMENTS.md E30, the ISSUE-10
    // memory-traffic ledger). For every throughput shape, the same keys
    // are sorted by an instrumented lone worker under both strategies.
    // Four claims are asserted in-binary before anything reaches the
    // artifact (the validator then recomputes them from the rows):
    // the permutations are bit-identical; the in-place run's auxiliary
    // allocation is at most the B·P·8 destination-offset table (the
    // materialized run's N-word bucket buffer is gone); the in-place
    // Fill/publish pipeline touches strictly fewer shared-array bytes;
    // and a crash-free run never tears a unit (cycle_restarts = 0).
    let n_inplace = if quick { 20_000 } else { 1_000_000 };
    let mut inplace = Vec::new();
    let mut f = Table::new(&[
        "shape",
        "shards",
        "aux inpl",
        "aux mat",
        "bytes inpl",
        "bytes mat",
        "saved",
        "moves inpl/mat",
    ]);
    for (shape, keys) in shapes(n_inplace) {
        for &shards in &[8usize, 64] {
            let run = |strategy: PartitionStrategy| {
                let job = ShardedSortJob::with_config(
                    keys.to_vec(),
                    NativeAllocation::Deterministic,
                    1,
                    shards,
                    ShardConfig {
                        partition_strategy: strategy,
                        ..ShardConfig::default()
                    },
                );
                let slot = MetricSlot::new();
                job.participate_instrumented(&mut RunToCompletion, &slot);
                let m = slot.snapshot();
                let bytes = m.phases.fill.bytes_touched + m.phases.shard_sort.bytes_touched;
                let (blocks, pieces) = (job.partition_blocks(), job.buckets());
                (job.permutation(), job.shard_report(), bytes, blocks, pieces)
            };
            let (mat_perm, mat_report, mat_bytes, blocks, pieces) =
                run(PartitionStrategy::Materialized);
            let (inp_perm, inp_report, inp_bytes, _, _) = run(PartitionStrategy::InPlace);
            assert!(
                perm_is_sorted(&keys, &inp_perm),
                "in-place output unsorted at {shards}x{shape}"
            );
            assert_eq!(
                inp_perm, mat_perm,
                "strategy permutation mismatch at {shards}x{shape}"
            );
            assert_eq!(inp_report.strategy, PartitionStrategy::InPlace);
            let aux_cap = (blocks * pieces) as u64 * 8;
            assert!(
                inp_report.aux_bytes <= aux_cap,
                "{shape} S={shards}: in-place aux {} bytes exceeds the \
                 B·P·8 cap {aux_cap}",
                inp_report.aux_bytes
            );
            assert!(
                inp_bytes < mat_bytes,
                "{shape} S={shards}: in-place ledger {inp_bytes} bytes not \
                 strictly below materialized {mat_bytes}"
            );
            assert!(
                inp_report.moves <= mat_report.moves,
                "{shape} S={shards}: in-place moved {} elements, \
                 materialized {}",
                inp_report.moves,
                mat_report.moves
            );
            assert_eq!(
                inp_report.cycle_restarts, 0,
                "{shape} S={shards}: crash-free run tore a unit"
            );
            let saved = 100.0 * (1.0 - inp_bytes as f64 / mat_bytes as f64);
            f.row(vec![
                shape.into(),
                shards.to_string(),
                inp_report.aux_bytes.to_string(),
                mat_report.aux_bytes.to_string(),
                inp_bytes.to_string(),
                mat_bytes.to_string(),
                format!("{saved:.0}%"),
                format!("{}/{}", inp_report.moves, mat_report.moves),
            ]);
            inplace.push(format!(
                concat!(
                    "{{\"shape\":\"{}\",\"n\":{},\"shards\":{},",
                    "\"partition_blocks\":{},\"buckets\":{},",
                    "\"aux_bytes\":{},\"aux_cap\":{},",
                    "\"moves_inplace\":{},\"moves_materialized\":{},",
                    "\"bytes_inplace\":{},\"bytes_materialized\":{},",
                    "\"cycle_restarts\":{},\"sorted\":true,",
                    "\"permutation_match\":true}}"
                ),
                shape,
                n_inplace,
                shards,
                blocks,
                pieces,
                inp_report.aux_bytes,
                aux_cap,
                inp_report.moves,
                mat_report.moves,
                inp_bytes,
                mat_bytes,
                inp_report.cycle_restarts,
            ));
        }
    }
    f.print(&format!(
        "E26f: partition-strategy A/B at N = {n_inplace} (lone instrumented \
         worker; aux = bytes of auxiliary allocation beyond the output \
         permutation, capped at B·P·8 in-place; bytes = Fill + shard-sort \
         shared-array ledger, asserted strictly smaller in-place; every \
         row's permutations matched element-for-element)"
    ));

    let artifact = format!(
        "{{\"schema\":\"{SHARDED_SCHEMA}\",\"experiment\":\"e26_sharded_bench\",\
         \"quick\":{quick},\
         \"comparison\":[\n{}\n],\
         \"balance\":[\n{}\n],\
         \"counter_pins\":[\n{}\n],\
         \"adversarial\":[\n{}\n],\
         \"classify\":[\n{}\n],\
         \"inplace\":[\n{}\n]}}\n",
        comparison.join(",\n"),
        balance.join(",\n"),
        counter_pins.join(",\n"),
        adversarial.join(",\n"),
        classify.join(",\n"),
        inplace.join(",\n"),
    );
    // Self-gate before writing: a malformed artifact must never land.
    if let Err(e) = validate_sharded_bench(&artifact) {
        eprintln!("error: generated artifact fails its own schema: {e}");
        return ExitCode::FAILURE;
    }
    if std::env::var_os("BENCH_OUTPUT_DIR").is_some() {
        match write_artifact("BENCH_sharded.json", &artifact) {
            Some(path) => match std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|t| validate_sharded_bench(&t).map_err(|e| e.to_string()))
            {
                Ok(entries) => {
                    println!("\nBENCH_sharded.json: {entries} entries, schema {SHARDED_SCHEMA}")
                }
                Err(e) => {
                    eprintln!("error: written artifact failed re-validation: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => {
                eprintln!("error: BENCH_OUTPUT_DIR is set but the artifact was not written");
                return ExitCode::FAILURE;
            }
        }
    } else {
        eprintln!("(BENCH_OUTPUT_DIR unset: BENCH_sharded.json not persisted)");
    }

    println!(
        "\nPaper tie-in (§1.2): the paper's O(N log N / P) bound charges \
         every element a descent through one shared tree, so the root is \
         a contention point the moment P stops scaling with N. Splitter \
         sharding in front of the tree (Axtmann–Sanders style) turns one \
         global rendezvous into S independent small trees, equality \
         buckets keep duplicate floods from re-serializing the split, and \
         the WAT machinery keeps the fault story: a crashed worker's \
         shard is redone whole by survivors. The in-place exchange keeps \
         the paper's low-contention discipline — disjoint writes, \
         monotone slot states — while retiring the N-word bucket buffer \
         for a B·P offset table. Timings above are from a single shared \
         host; the permutation-parity, counter-pin, adversarial-balance, \
         and memory-ledger columns are the load-bearing ones."
    );
    ExitCode::SUCCESS
}
