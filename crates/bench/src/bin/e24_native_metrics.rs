//! E24 — native sort telemetry: per-phase operation counts, the
//! CAS-failure contention proxy, and the help-step share, swept over
//! threads × input shapes × allocation strategies, persisted as the
//! schema-stable `BENCH_native.json` perf artifact.
//!
//! The native answer to E6: the simulator counts §1.2 contention
//! directly (max concurrent accesses per cell); real threads cannot, so
//! the proxy is the fraction of child-pointer CAS attempts that lost a
//! race (each attempt is issued only against a slot observed EMPTY —
//! see DESIGN.md §9). The deterministic-vs-randomized comparison of E6
//! is reproduced on real threads in table E24b, and E24c reports the
//! instrumentation overhead against the uninstrumented `sort` on the
//! E5 workload (a random permutation).
//!
//! Run: `cargo run --release -p bench --bin e24_native_metrics`
//! CI smoke: `... e24_native_metrics -- --quick`
//! Schema gate: `... e24_native_metrics -- --validate <path>`
//!
//! When `BENCH_OUTPUT_DIR` is set, a missing or invalid artifact is a
//! hard error (exit 1), not a warning — CI depends on the file.

use std::process::ExitCode;

use bench::json::NATIVE_METRICS_SCHEMA;
use bench::{f2, timed, validate_native_metrics, write_artifact, Table};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};
use wfsort_native::{NativeAllocation, SortJob, SortReport, WaitFreeSorter};

fn alloc_name(a: NativeAllocation) -> &'static str {
    match a {
        NativeAllocation::Deterministic => "wat",
        NativeAllocation::Randomized => "lcwat",
    }
}

/// The swept input shapes. Sorted/reversed spines are excluded on
/// purpose: the pivot tree degenerates to depth N there (see E12), which
/// measures tree shape, not work allocation.
fn shapes(n: usize) -> Vec<(&'static str, Vec<u64>)> {
    let mut rng = StdRng::seed_from_u64(24);
    let uniform: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
    let few: Vec<u64> = (0..n).map(|_| rng.gen_range(0..64)).collect();
    let sawtooth: Vec<u64> = (0..n).map(|i| (i % 1009) as u64).collect();
    vec![
        ("uniform-random", uniform),
        ("few-distinct", few),
        ("sawtooth", sawtooth),
    ]
}

struct Run {
    threads: usize,
    n: usize,
    shape: &'static str,
    allocation: NativeAllocation,
    sorted: bool,
    tracked_slots: usize,
    report: SortReport,
}

fn run_once(
    keys: &[u64],
    expect: &[u64],
    threads: usize,
    shape: &'static str,
    allocation: NativeAllocation,
) -> Run {
    let job = SortJob::with_tracked(keys.to_vec(), allocation, threads);
    let report = WaitFreeSorter::new(threads).run_job_with_report(&job);
    Run {
        threads,
        n: keys.len(),
        shape,
        allocation,
        sorted: job.into_sorted() == expect,
        tracked_slots: threads,
        report,
    }
}

fn json_record(r: &Run) -> String {
    let p = &r.report.per_phase;
    // The validator cross-checks per_worker length against tracked_slots,
    // so the slot count comes from the job's configuration, not from
    // whatever the report happens to contain.
    let per_worker: Vec<String> = r
        .report
        .per_worker
        .iter()
        .map(|w| {
            format!(
                "{{\"help_steps\":{},\"checkpoints\":{},\"total_ops\":{}}}",
                w.help_steps,
                w.checkpoints,
                w.phases.total_ops()
            )
        })
        .collect();
    format!(
        concat!(
            "{{\"threads\":{},\"n\":{},\"shape\":\"{}\",\"allocation\":\"{}\",",
            "\"elapsed_ms\":{:.3},\"sorted\":{},\"total_ops\":{},",
            "\"help_steps\":{},\"checkpoints\":{},\"cas_failure_rate\":{:.6},",
            "\"tracked_slots\":{},\"per_worker\":[{}],",
            "\"build\":{{\"cas_attempts\":{},\"cas_failures\":{},",
            "\"descent_steps\":{},\"claims\":{},\"block_claims\":{},\"probes\":{}}},",
            "\"sum\":{{\"visits\":{},\"skips\":{}}},",
            "\"place\":{{\"visits\":{},\"skips\":{}}},",
            "\"scatter\":{{\"claims\":{},\"block_claims\":{},\"probes\":{}}}}}"
        ),
        r.threads,
        r.n,
        r.shape,
        alloc_name(r.allocation),
        r.report.elapsed.as_secs_f64() * 1e3,
        r.sorted,
        r.report.total_ops(),
        r.report.help_steps(),
        r.report.checkpoints(),
        r.report.cas_failure_rate,
        r.tracked_slots,
        per_worker.join(","),
        p.build.cas_attempts,
        p.build.cas_failures,
        p.build.descent_steps,
        p.build.claims,
        p.build.block_claims,
        p.build.probes,
        p.sum.visits,
        p.sum.skips,
        p.place.visits,
        p.place.skips,
        p.scatter.claims,
        p.scatter.block_claims,
        p.scatter.probes,
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if let Some(at) = args.iter().position(|a| a == "--validate") {
        let path = match args.get(at + 1) {
            Some(p) => p,
            None => {
                eprintln!("--validate needs a path");
                return ExitCode::FAILURE;
            }
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: could not read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match validate_native_metrics(&text) {
            Ok(runs) => {
                println!("{path}: valid {NATIVE_METRICS_SCHEMA} with {runs} runs");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let quick = args.iter().any(|a| a == "--quick");
    let n = if quick { 20_000 } else { 200_000 };
    let thread_counts: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };

    let mut records = Vec::new();
    let mut a = Table::new(&[
        "threads",
        "shape",
        "allocation",
        "ms",
        "cas fail rate",
        "descents/N",
        "dup claims",
        "wat steps/job",
    ]);
    for (shape, keys) in shapes(n) {
        let mut expect = keys.clone();
        expect.sort_unstable();
        for &threads in thread_counts {
            for allocation in [
                NativeAllocation::Deterministic,
                NativeAllocation::Randomized,
            ] {
                let run = run_once(&keys, &expect, threads, shape, allocation);
                assert!(run.sorted, "unsorted output at {threads}x{shape}");
                let p = &run.report.per_phase;
                let claims = p.build.claims + p.scatter.claims;
                let jobs = (n - 1 + n) as u64;
                let wat_steps = claims + p.build.probes + p.scatter.probes;
                a.row(vec![
                    threads.to_string(),
                    shape.into(),
                    alloc_name(allocation).into(),
                    f2(run.report.elapsed.as_secs_f64() * 1e3),
                    format!("{:.4}", run.report.cas_failure_rate),
                    f2(p.build.descent_steps as f64 / n as f64),
                    (claims - jobs.min(claims)).to_string(),
                    f2(wat_steps as f64 / jobs as f64),
                ]);
                records.push(json_record(&run));
            }
        }
    }
    a.print(&format!(
        "E24: native sort telemetry at N = {n} (threads x shape x allocation; \
         'dup claims' = WAT jobs executed more than once, 'wat steps/job' = \
         allocation bookkeeping per unit of work)"
    ));

    // E24b — the E6 comparison on real threads: the CAS-failure rate of
    // the build phase under deterministic vs randomized work allocation.
    // Contention concentrates near the root while the tree is small, so
    // the sweep includes small N where the proxy visibly registers; at
    // large N the rate vanishing *is* the paper's point (the tree fans
    // concurrent inserts apart — Lemma 3.1's low-contention story).
    let mut b = Table::new(&[
        "N",
        "threads",
        "rate (wat)",
        "rate (lcwat)",
        "fails (wat)",
        "fails (lcwat)",
    ]);
    for &n_c in &[512, 4096, n] {
        let (shape, keys) = shapes(n_c).swap_remove(0);
        let mut expect = keys.clone();
        expect.sort_unstable();
        for &threads in thread_counts {
            let det = run_once(
                &keys,
                &expect,
                threads,
                shape,
                NativeAllocation::Deterministic,
            );
            let rnd = run_once(&keys, &expect, threads, shape, NativeAllocation::Randomized);
            assert!(det.sorted && rnd.sorted);
            b.row(vec![
                n_c.to_string(),
                threads.to_string(),
                format!("{:.4}", det.report.cas_failure_rate),
                format!("{:.4}", rnd.report.cas_failure_rate),
                det.report.per_phase.build.cas_failures.to_string(),
                rnd.report.per_phase.build.cas_failures.to_string(),
            ]);
            records.push(json_record(&det));
            records.push(json_record(&rnd));
        }
    }
    b.print(
        "E24b: build-phase contention proxy on uniform-random keys \
         (E6 on real threads: CAS attempts that lost a race)",
    );

    // E24c — instrumentation overhead on the E5 workload (random
    // permutation), min-of-R against the uninstrumented sort.
    let perm: Vec<u64> = {
        let mut v: Vec<u64> = (0..n as u64).collect();
        v.shuffle(&mut StdRng::seed_from_u64(5));
        v
    };
    let mut expect = perm.clone();
    expect.sort_unstable();
    let repeats = if quick { 3 } else { 7 };
    let mut c = Table::new(&["threads", "sort ms", "with report ms", "overhead"]);
    for &threads in thread_counts {
        let sorter = WaitFreeSorter::new(threads);
        let mut plain = f64::INFINITY;
        let mut instrumented = f64::INFINITY;
        for _ in 0..repeats {
            let (sorted, secs) = timed(|| sorter.sort(&perm));
            assert_eq!(sorted, expect);
            plain = plain.min(secs);
            let ((sorted, report), secs) = timed(|| sorter.sort_with_report(&perm));
            assert_eq!(sorted, expect);
            assert!(report.total_ops() > 0);
            instrumented = instrumented.min(secs);
        }
        c.row(vec![
            threads.to_string(),
            f2(plain * 1e3),
            f2(instrumented * 1e3),
            format!("{:+.1}%", (instrumented / plain - 1.0) * 1e2),
        ]);
    }
    c.print(&format!(
        "E24c: instrumentation overhead on the E5 workload (random \
         permutation, N = {n}, min of {repeats})"
    ));

    let artifact = format!(
        "{{\"schema\":\"{NATIVE_METRICS_SCHEMA}\",\"experiment\":\"e24_native_metrics\",\
         \"n\":{n},\"quick\":{quick},\"runs\":[\n{}\n]}}\n",
        records.join(",\n")
    );
    // Self-gate before writing: a malformed artifact must never land.
    if let Err(e) = validate_native_metrics(&artifact) {
        eprintln!("error: generated artifact fails its own schema: {e}");
        return ExitCode::FAILURE;
    }
    if std::env::var_os("BENCH_OUTPUT_DIR").is_some() {
        match write_artifact("BENCH_native.json", &artifact) {
            Some(path) => match std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|t| validate_native_metrics(&t).map_err(|e| e.to_string()))
            {
                Ok(runs) => {
                    println!("\nBENCH_native.json: {runs} runs, schema {NATIVE_METRICS_SCHEMA}")
                }
                Err(e) => {
                    eprintln!("error: written artifact failed re-validation: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => {
                eprintln!("error: BENCH_OUTPUT_DIR is set but the artifact was not written");
                return ExitCode::FAILURE;
            }
        }
    } else {
        eprintln!("(BENCH_OUTPUT_DIR unset: BENCH_native.json not persisted)");
    }

    println!(
        "\nPaper tie-in (§1.2/§3): the simulator's contention measure \
         becomes the native CAS-failure rate. Shape checks: the rate is 0 \
         at 1 thread and grows with threads; descents/N tracks the tree \
         depth (~2 ln N for random shapes, shallower with duplicates); \
         randomized allocation trades extra probes for decorrelated \
         claims; instrumentation overhead stays within noise of the \
         uninstrumented sort."
    );
    ExitCode::SUCCESS
}
