//! E20 (extension) — the all-workloads panorama: every sorter variant on
//! every input distribution, one table. Answers "which inputs hurt which
//! variant" at a glance and doubles as a broad correctness smoke test
//! (every cell's output is verified).
//!
//! Run: `cargo run --release -p bench --bin e20_workload_sweep`

use bench::Table;
use wfsort::low_contention::LowContentionSorter;
use wfsort::{check_sorted_permutation, Allocation, PramSorter, SortConfig, Workload};

fn main() {
    let n = 256; // 4^4 so the low-contention sorter participates at P = N
    let p = 16;
    let mut t = Table::new(&[
        "workload",
        "det cycles (P=16)",
        "rand cycles (P=16)",
        "LC cycles (P=N)",
        "det contention",
        "LC contention",
    ]);
    for w in Workload::all() {
        let keys = w.generate(n, 61);

        let det = PramSorter::new(SortConfig::new(p).seed(61))
            .sort(&keys)
            .expect("sort completes");
        check_sorted_permutation(&keys, &det.sorted).expect("det sorted");

        let rand = PramSorter::new(
            SortConfig::new(p)
                .seed(61)
                .allocation(Allocation::Randomized),
        )
        .sort(&keys)
        .expect("sort completes");
        check_sorted_permutation(&keys, &rand.sorted).expect("rand sorted");

        let lc = LowContentionSorter::default()
            .sort(&keys)
            .expect("sort completes");
        check_sorted_permutation(&keys, &lc.sorted).expect("lc sorted");

        t.row(vec![
            w.name().to_string(),
            det.report.metrics.cycles.to_string(),
            rand.report.metrics.cycles.to_string(),
            lc.report.metrics.cycles.to_string(),
            det.report.metrics.max_contention.to_string(),
            lc.report.metrics.max_contention.to_string(),
        ]);
    }
    t.print(&format!(
        "E20: all workloads x all simulated variants, N = {n} (det/rand at P = {p}, LC at P = N)"
    ));
    println!(
        "\nReading the table: input order moves the deterministic variant \
         (deep trees on sorted-ish inputs at P << N); the randomized \
         allocation flattens those rows; the low-contention pipeline's \
         cost is input-insensitive and its contention column never leaves \
         the sqrt(P) band. Every cell's output was verified as a sorted \
         permutation."
    );
}
