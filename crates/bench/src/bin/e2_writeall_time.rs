//! E2 — Lemma 2.3: the skeleton wait-free algorithm (write-all) with
//! `P = N` processors and `K`-step leaf work completes in `O(K + log N)`
//! cycles on a faultless CRCW PRAM.
//!
//! Run: `cargo run --release -p bench --bin e2_writeall_time`

use bench::{f2, log2, Table};
use pram::{Machine, MemoryLayout, SyncScheduler};
use wat::{BusyWorker, Wat};

fn main() {
    let mut t = Table::new(&["N = P", "K", "cycles", "cycles/(K + log2 N)"]);
    for k_work in [0usize, 4, 16, 64] {
        for exp in [4u32, 6, 8, 10, 12] {
            let n = 1usize << exp;
            let mut layout = MemoryLayout::new();
            let out = layout.region(n);
            let wat = Wat::layout(&mut layout, n);
            let mut machine = Machine::new(layout.total());
            for p in wat.processes(n, |_| BusyWorker::new(out, k_work)) {
                machine.add_process(p);
            }
            let report = machine
                .run(&mut SyncScheduler, 100_000_000)
                .expect("wait-free: must terminate");
            // Sanity: write-all actually wrote all.
            let values = machine.memory().snapshot(out.range());
            assert!(values.iter().all(|&v| v >= 1), "write-all incomplete");
            let denom = k_work as f64 + log2(n);
            t.row(vec![
                n.to_string(),
                k_work.to_string(),
                report.metrics.cycles.to_string(),
                f2(report.metrics.cycles as f64 / denom),
            ]);
        }
    }
    t.print("E2: write-all completion time, P = N (Lemma 2.3)");
    println!(
        "\nPaper claim: O(K + log N) cycles. Shape check: the last column \
         should stay bounded as N grows for every K."
    );
}
