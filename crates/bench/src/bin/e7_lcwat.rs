//! E7 — Lemma 3.1: the LC-WAT solves write-all in `O(log P)` time with
//! `O(log P / log log P)` contention, with high probability.
//!
//! Run: `cargo run --release -p bench --bin e7_lcwat`

use bench::{f2, log2, mean, Table};
use pram::{Machine, MemoryLayout, SyncScheduler};
use wat::{LcWat, WriteAllWorker};

/// One LC-WAT write-all run; returns (cycles, max contention).
fn run(p: usize, seed: u64) -> (u64, usize) {
    let mut layout = MemoryLayout::new();
    let out = layout.region(p);
    let wat = LcWat::layout(&mut layout, p);
    let mut machine = Machine::with_seed(layout.total(), seed);
    for proc in wat.processes(p, seed, |_| WriteAllWorker::new(out, 1)) {
        machine.add_process(proc);
    }
    let report = machine
        .run(&mut SyncScheduler, 100_000_000)
        .expect("terminates w.p. 1");
    assert!(wat.all_done(machine.memory()), "write-all incomplete");
    (report.metrics.cycles, report.metrics.max_contention)
}

fn main() {
    let trials = 5;
    let mut t = Table::new(&[
        "P",
        "cycles (mean)",
        "cycles/log2 P",
        "contention (mean)",
        "bound logP/loglogP",
    ]);
    for k in [4u32, 6, 8, 10, 12, 14] {
        let p = 1usize << k;
        let mut cycles = Vec::new();
        let mut contention = Vec::new();
        for s in 0..trials {
            let (c, m) = run(p, 1000 + s);
            cycles.push(c as f64);
            contention.push(m as f64);
        }
        let lg = log2(p);
        t.row(vec![
            p.to_string(),
            f2(mean(&cycles)),
            f2(mean(&cycles) / lg),
            f2(mean(&contention)),
            f2(lg / lg.log2()),
        ]);
    }
    t.print("E7: LC-WAT write-all, P jobs / P processors (Lemma 3.1)");
    println!(
        "\nPaper claim: O(log P) time, O(log P / log log P) contention \
         w.h.p. Shape checks: 'cycles/log2 P' stays bounded; measured \
         contention grows no faster than the bound column."
    );
}
