//! E15 (extension) — the paper's first open problem ("a detailed
//! analysis of the work performed by the algorithm in the asynchronous
//! case is still required", §4): measure total work as the schedule
//! degrades from lockstep to fully sequential, with random stalls in
//! between.
//!
//! Run: `cargo run --release -p bench --bin e15_async_work`

use bench::{f2, mean, Table};
use pram::{failure::FailurePlan, RandomScheduler, Scheduler, SingleStepScheduler, SyncScheduler};
use wfsort::{check_sorted_permutation, PramSorter, SortConfig, Workload};

fn work(keys: &[i64], p: usize, sched: &mut dyn Scheduler, seed: u64) -> f64 {
    let outcome = PramSorter::new(SortConfig::new(p).seed(seed))
        .sort_under(keys, sched, &FailurePlan::new())
        .expect("sort completes");
    check_sorted_permutation(keys, &outcome.sorted).expect("sorted");
    outcome.report.metrics.total_ops as f64
}

fn main() {
    let n = 512;
    let p = 32;
    let trials = 5;
    let keys = Workload::RandomPermutation.generate(n, 41);

    let mut t = Table::new(&["schedule", "total ops (mean)", "work inflation"]);
    let baseline = {
        let mut xs = Vec::new();
        for s in 0..trials {
            xs.push(work(&keys, p, &mut SyncScheduler, 100 + s));
        }
        mean(&xs)
    };
    t.row(vec!["synchronous (PRAM)".into(), f2(baseline), f2(1.0)]);
    for prob in [0.75, 0.5, 0.25, 0.1] {
        let mut xs = Vec::new();
        for s in 0..trials {
            let mut sched = RandomScheduler::new(300 + s, prob);
            xs.push(work(&keys, p, &mut sched, 100 + s));
        }
        let m = mean(&xs);
        t.row(vec![
            format!("random, step prob {prob}"),
            f2(m),
            f2(m / baseline),
        ]);
    }
    {
        let mut xs = Vec::new();
        for s in 0..trials {
            let mut sched = SingleStepScheduler::new();
            xs.push(work(&keys, p, &mut sched, 100 + s));
        }
        let m = mean(&xs);
        t.row(vec!["fully sequential".into(), f2(m), f2(m / baseline)]);
    }
    t.print(&format!(
        "E15: total work vs asynchrony, N = {n}, P = {p} (the paper's §4 open problem)"
    ));
    println!(
        "\nFinding: the work inflation stays a small constant across the \
         entire asynchrony spectrum. The intuition the measurement \
         supports: duplicated work only arises when two processors hold \
         the same WAT leaf or race down the same tree path concurrently, \
         and *less* synchrony means less simultaneity — fully sequential \
         execution does almost exactly the sequential algorithm's work. \
         The O(log^3 N)-style inflation of simulation-based approaches \
         never appears, because wait-freedom here is structural, not \
         simulated."
    );
}
