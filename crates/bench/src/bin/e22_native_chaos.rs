//! E22 — native chaos fuzzing: the native sorter completes with correct
//! output under seeded crash storms (crash fraction × seed × allocation
//! strategy), and a deadline that reaps every helper still yields a
//! correct sort from the calling thread.
//!
//! The native analogue of E9 (`e9_failures`): where E9 scripts PRAM-cycle
//! crashes through `FailurePlan`, this sweeps participation-checkpoint
//! crashes through `ChaosPlan` on real threads. Alongside the tables, a
//! machine-readable JSON record per run is written to
//! `BENCH_OUTPUT_DIR/e22-native-chaos.json` when that variable is set.
//!
//! Run: `cargo run --release -p bench --bin e22_native_chaos`
//! CI smoke: `cargo run --release -p bench --bin e22_native_chaos -- --quick`

use std::time::Duration;

use bench::{f2, mean, timed, write_artifact, Table};
use wfsort_native::{ChaosParticipation, ChaosPlan, NativeAllocation, SortJob, WaitFreeSorter};

const WORKERS: usize = 4;
const HORIZON: u64 = 200;

struct Run {
    fraction: f64,
    seed: u64,
    allocation: NativeAllocation,
    survivors: usize,
    by_workers: bool,
    sorted: bool,
    millis: f64,
}

fn alloc_name(a: NativeAllocation) -> &'static str {
    match a {
        NativeAllocation::Deterministic => "wat",
        NativeAllocation::Randomized => "lcwat",
    }
}

fn json_record(r: &Run) -> String {
    format!(
        concat!(
            "{{\"fraction\":{},\"seed\":{},\"allocation\":\"{}\",",
            "\"survivors\":{},\"completed_by_workers\":{},\"sorted\":{},",
            "\"millis\":{:.3}}}"
        ),
        r.fraction,
        r.seed,
        alloc_name(r.allocation),
        r.survivors,
        r.by_workers,
        r.sorted,
        r.millis,
    )
}

/// One chaos run: drives a `SortJob` with one `ChaosParticipation` per
/// plan slot, recording whether the workers finished by themselves
/// before letting the caller mop up (`sort_with_plan` folds that
/// fallback in; here we want it observable).
fn chaos_run(
    keys: &[u64],
    expect: &[u64],
    fraction: f64,
    seed: u64,
    allocation: NativeAllocation,
) -> Run {
    let plan = ChaosPlan::random_crashes(WORKERS, fraction, HORIZON, seed).with_jitter(0.02, 100);
    let job = SortJob::with_allocation(keys.to_vec(), allocation);
    let (by_workers, secs) = timed(|| {
        crossbeam::thread::scope(|s| {
            for w in 0..plan.workers() {
                let (job, plan) = (&job, &plan);
                s.spawn(move |_| job.participate(&mut ChaosParticipation::new(plan, w)));
            }
        })
        .expect("worker threads do not panic");
        job.is_complete()
    });
    if !by_workers {
        job.run();
    }
    Run {
        fraction,
        seed,
        allocation,
        survivors: plan.survivors(),
        by_workers,
        sorted: job.into_sorted() == expect,
        millis: secs * 1e3,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick { 5_000 } else { 50_000 };
    let seeds: u64 = if quick { 4 } else { 25 };

    let keys: Vec<u64> = {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(22);
        (0..n).map(|_| rng.gen_range(0..u64::MAX)).collect()
    };
    let mut expect = keys.clone();
    expect.sort_unstable();

    let mut records = Vec::new();
    let mut t = Table::new(&[
        "crash fraction",
        "allocation",
        "survivors (mean)",
        "ms (mean)",
        "slowdown",
        "by workers",
        "sorted?",
    ]);
    let mut baseline = f64::NAN;
    for fraction in [0.0, 0.25, 0.5, 0.75, 0.9] {
        for allocation in [
            NativeAllocation::Deterministic,
            NativeAllocation::Randomized,
        ] {
            let mut millis = Vec::new();
            let mut survivors = Vec::new();
            let mut by_workers = 0usize;
            let mut all_sorted = true;
            for seed in 0..seeds {
                let run = chaos_run(&keys, &expect, fraction, 2200 + seed, allocation);
                millis.push(run.millis);
                survivors.push(run.survivors as f64);
                by_workers += run.by_workers as usize;
                all_sorted &= run.sorted;
                records.push(json_record(&run));
            }
            let ms = mean(&millis);
            if baseline.is_nan() {
                baseline = ms;
            }
            t.row(vec![
                f2(fraction),
                alloc_name(allocation).into(),
                f2(mean(&survivors)),
                f2(ms),
                f2(ms / baseline),
                format!("{by_workers}/{seeds}"),
                if all_sorted {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
            assert!(all_sorted, "chaos run produced an unsorted output");
        }
    }
    t.print(&format!(
        "E22: native sort of N = {n} with {WORKERS} workers under seeded crash storms \
         (crashes at random checkpoints in [0, {HORIZON}), jitter 2%)"
    ));

    // Deadline-bounded sorting: helpers are reaped at the deadline and the
    // calling thread finishes alone; correctness must not depend on how
    // much help the deadline allowed.
    let mut d = Table::new(&["deadline", "ms (mean)", "sorted?"]);
    let sorter = WaitFreeSorter::new(WORKERS);
    for (label, deadline) in [
        ("0", Duration::ZERO),
        ("100us", Duration::from_micros(100)),
        ("1ms", Duration::from_millis(1)),
        ("unbounded", Duration::from_secs(3600)),
    ] {
        let mut millis = Vec::new();
        let mut all_sorted = true;
        for _ in 0..seeds {
            let (sorted, secs) = timed(|| sorter.sort_with_deadline(&keys, deadline));
            all_sorted &= sorted == expect;
            millis.push(secs * 1e3);
        }
        d.row(vec![
            label.into(),
            f2(mean(&millis)),
            if all_sorted {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
        assert!(all_sorted, "deadline run produced an unsorted output");
    }
    d.print(&format!(
        "E22b: deadline-bounded native sort of N = {n} ({} helpers + caller; helpers released \
         at the deadline)",
        WORKERS - 1
    ));

    write_artifact(
        "e22-native-chaos.json",
        &format!("[\n{}\n]\n", records.join(",\n")),
    );

    println!(
        "\nPaper claim (the definition of wait-freedom, §1, on native \
         threads): the sort completes despite any failures. Shape checks: \
         'sorted?' is always yes; with at least one survivor the workers \
         finish by themselves ('by workers' = seeds); time grows as \
         survivors shrink, and a shorter deadline shifts work to the \
         caller without ever costing correctness."
    );
}
