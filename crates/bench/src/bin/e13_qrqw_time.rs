//! E13 (extension) — time under contention-charging: §1.2 argues
//! contention costs real time because "hardware can only service a
//! constant number of memory access operations per cycle". The QRQW PRAM
//! (Gibbons–Matias–Ramachandran, cited in §3) makes that precise: a step
//! costs its maximum per-cell contention. Under QRQW charging the §3
//! algorithm's contention reduction turns into a *time* win, which the
//! plain CRCW cycle count hides.
//!
//! Run: `cargo run --release -p bench --bin e13_qrqw_time`

use bench::{f2, Table};
use wfsort::low_contention::LowContentionSorter;
use wfsort::{check_sorted_permutation, PramSorter, SortConfig, Workload};

fn main() {
    let mut t = Table::new(&[
        "N = P",
        "det cycles",
        "det QRQW time",
        "LC cycles",
        "LC QRQW time",
        "QRQW speedup",
    ]);
    for k in [2u32, 3, 4, 5] {
        let n = 1usize << (2 * k);
        let keys = Workload::RandomPermutation.generate(n, 29);

        let det = PramSorter::new(SortConfig::new(n).seed(29))
            .sort(&keys)
            .expect("sort completes");
        check_sorted_permutation(&keys, &det.sorted).expect("det sorted");

        let lc = LowContentionSorter::default()
            .sort(&keys)
            .expect("sort completes");
        check_sorted_permutation(&keys, &lc.sorted).expect("lc sorted");

        t.row(vec![
            n.to_string(),
            det.report.metrics.cycles.to_string(),
            det.report.metrics.qrqw_time.to_string(),
            lc.report.metrics.cycles.to_string(),
            lc.report.metrics.qrqw_time.to_string(),
            f2(det.report.metrics.qrqw_time as f64 / lc.report.metrics.qrqw_time as f64),
        ]);
    }
    t.print("E13: CRCW cycles vs QRQW (contention-charged) time, P = N");
    println!(
        "\nInterpretation: on the idealized CRCW machine the low-contention \
         sort pays extra cycles (the §3 trade). Once each cycle is charged \
         its contention — the QRQW model the paper cites as the realistic \
         one — the deterministic sort's O(P) pile-ups dominate its bill \
         and the §3 variant wins outright, increasingly so with P."
    );
}
