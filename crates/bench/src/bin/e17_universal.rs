//! E17 (extension) — §1.1's first objection, quantified: sorting through
//! a wait-free universal construction (Herlihy) serializes all N
//! insertions through one object and pays the copy cost `f = O(N)` per
//! operation, with every helper duplicating the work. The direct
//! algorithm needs `O(N log N / P)`; the object needs `Theta(N^2)`
//! regardless of `P`.
//!
//! Run: `cargo run --release -p bench --bin e17_universal`

use baselines::UniversalSorter;
use bench::{f2, log2, Table};
use wfsort::{check_sorted_permutation, PramSorter, SortConfig, Workload};

fn main() {
    let p = 8;
    let mut t = Table::new(&[
        "N",
        "direct sort (cycles)",
        "universal object (cycles)",
        "ratio",
        "N / log2 N",
        "universal work / P=1 work",
    ]);
    for n in [16usize, 32, 64, 128, 256] {
        let keys = Workload::RandomPermutation.generate(n, 37);

        let direct = PramSorter::new(SortConfig::new(p).seed(37))
            .sort(&keys)
            .expect("sort completes");
        check_sorted_permutation(&keys, &direct.sorted).expect("direct sorted");

        let uni = UniversalSorter::new(p).sort(&keys).expect("sort completes");
        check_sorted_permutation(&keys, &uni.sorted).expect("universal sorted");

        let solo = UniversalSorter::new(1).sort(&keys).expect("sort completes");

        t.row(vec![
            n.to_string(),
            direct.report.metrics.cycles.to_string(),
            uni.report.metrics.cycles.to_string(),
            f2(uni.report.metrics.cycles as f64 / direct.report.metrics.cycles as f64),
            f2(n as f64 / log2(n)),
            f2(uni.report.metrics.total_ops as f64 / solo.report.metrics.total_ops as f64),
        ]);
    }
    t.print(&format!(
        "E17: direct wait-free sort vs sorting through a universal construction, P = {p}"
    ));
    println!(
        "\nPaper claim (§1.1): a wait-free 'sorting object' costs O(k f) \
         per operation — O(P N log N) for a straightforward sort — \
         because helpers duplicate work and the object serializes. Shape \
         checks: the cycle ratio grows roughly with N / log N (Theta(N^2) \
         vs Theta(N log N / P)); the last column shows P = 8 helpers do \
         ~several times the work one processor would (redundant helping), \
         *without* getting faster — parallelism is spent, not used."
    );
}
