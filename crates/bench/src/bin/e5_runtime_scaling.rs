//! E5 — Lemma 2.8 and the headline claim: the sort runs in
//! `O(N log N / P)` time w.h.p. on random-order input, `O(log N)` when
//! `P = N`; speedup in `P` is near-linear.
//!
//! Run: `cargo run --release -p bench --bin e5_runtime_scaling`

use bench::{f2, log2, Table};
use wfsort::{check_sorted_permutation, PramSorter, SortConfig, Workload};

fn cycles(n: usize, p: usize, seed: u64) -> u64 {
    let keys = Workload::RandomPermutation.generate(n, seed);
    let outcome = PramSorter::new(SortConfig::new(p).seed(seed))
        .sort(&keys)
        .expect("sort completes");
    check_sorted_permutation(&keys, &outcome.sorted).expect("sorted");
    outcome.report.metrics.cycles
}

fn main() {
    let mut a = Table::new(&["N = P", "cycles", "cycles/log2 N"]);
    for k in [6u32, 8, 10, 12] {
        let n = 1usize << k;
        let c = cycles(n, n, 11);
        a.row(vec![n.to_string(), c.to_string(), f2(c as f64 / log2(n))]);
    }
    a.print("E5a: P = N scaling (expect cycles ~ c log N: last column flat-ish)");

    let n = 1024;
    let base = cycles(n, 1, 3);
    let mut b = Table::new(&["P", "cycles", "speedup", "efficiency", "N log N / P"]);
    for p in [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024] {
        let c = cycles(n, p, 3);
        let speedup = base as f64 / c as f64;
        b.row(vec![
            p.to_string(),
            c.to_string(),
            f2(speedup),
            f2(speedup / p as f64),
            f2(n as f64 * log2(n) / p as f64),
        ]);
    }
    b.print(&format!(
        "E5b: processor scaling at N = {n} (expect near-linear speedup until P ~ N)"
    ));
    println!(
        "\nPaper claim: optimal O(N log N / P) with high probability on \
         random-order inputs. Shape checks: E5a's last column stays \
         bounded; E5b's efficiency stays high for P << N and tapers as \
         per-processor work approaches the O(log N) critical path."
    );
}
