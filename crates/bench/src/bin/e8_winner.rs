//! E8 — Lemma 3.2: winner selection finishes in `O(log P)` time with
//! `O(log P)` expected contention "for an appropriate constant K", and
//! every processor observes the same winner.
//!
//! The K-ablation makes the lemma's caveat concrete: the wait unit `K`
//! spaces the exponential arrival waves; below the threshold the waves
//! pile onto the propagation frontier and contention degrades toward
//! `sqrt(P)`-ish, at and above it contention locks onto `log P`.
//!
//! Run: `cargo run --release -p bench --bin e8_winner`

use bench::{f2, log2, mean, Table};
use pram::{Machine, MemoryLayout, Pid, SyncScheduler, Word};
use wat::WinnerTree;

/// One selection; returns (cycles, max contention).
fn run(p: usize, wait_unit: usize, seed: u64) -> (u64, usize) {
    let mut layout = MemoryLayout::new();
    let wt = WinnerTree::layout(&mut layout, p);
    let mut machine = Machine::with_seed(layout.total(), seed);
    for proc in wt.processes(seed, wait_unit, |pid| pid.index() as Word + 1) {
        machine.add_process(proc);
    }
    let report = machine
        .run(&mut SyncScheduler, 10_000_000)
        .expect("selection terminates");
    let winner = wt.winner(machine.memory()).expect("winner chosen");
    for i in 0..p {
        assert_eq!(
            wt.observed_winner(machine.memory(), Pid::new(i)),
            Some(winner),
            "processor {i} disagrees"
        );
    }
    (report.metrics.cycles, report.metrics.max_contention)
}

fn main() {
    let trials = 5;
    let mut t = Table::new(&[
        "P",
        "K",
        "cycles (mean)",
        "cycles/log2 P",
        "contention (mean)",
        "log2 P",
    ]);
    for k in [1usize, 2, 4, 8] {
        for exp in [6u32, 10, 14] {
            let p = 1usize << exp;
            let mut cycles = Vec::new();
            let mut contention = Vec::new();
            for s in 0..trials {
                let (c, m) = run(p, k, 2000 + s);
                cycles.push(c as f64);
                contention.push(m as f64);
            }
            t.row(vec![
                p.to_string(),
                k.to_string(),
                f2(mean(&cycles)),
                f2(mean(&cycles) / log2(p)),
                f2(mean(&contention)),
                f2(log2(p)),
            ]);
        }
    }
    t.print("E8: winner selection (Lemma 3.2) with K-ablation; agreement asserted every run");
    println!(
        "\nPaper claim: O(log P) time and O(log P) expected contention \
         'for an appropriate constant K'. Shape checks: cycles/log2 P is \
         bounded for every K; at K >= 4 the contention column locks onto \
         log2 P (the appropriate constant), while K = 1, 2 show the waves \
         outrunning the propagation frontier."
    );
}
