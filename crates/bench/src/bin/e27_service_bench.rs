//! E27 — the multi-tenant `SortService` under load: job latency and
//! throughput while many tenants share one worker pool, the
//! deadline-miss table (with the zero-deadline row pinned — it must
//! miss every job), admission-control backpressure against a bounded
//! queue with exact accounting, seeded chaos-recovery storms whose
//! publication ledger (`completed + workers_lost == admitted`) and
//! cross-tenant bit-identity are re-proved inline, and a fairness
//! section proving work conservation (idle workers join the lone
//! in-flight job as helper stints) and weighted overtaking (weight-8
//! tenants pass weight-1 tenants in the deficit pick), persisted as
//! the schema-stable `BENCH_service.json` perf artifact.
//!
//! The service ([`wfsort_native::SortService`]) inherits the paper's
//! wait-freedom as an *isolation* property: a `ChaosPlan` crashing
//! every worker stint on one tenant's job strands only that job, which
//! either recovers on a fresh stint or fails with a typed error while
//! every sibling tenant's output stays bit-identical to a sequential
//! sort. The recovery rows here re-prove that claim on every seed.
//!
//! Run: `cargo run --release -p bench --bin e27_service_bench`
//! CI smoke: `... e27_service_bench -- --quick`
//! Schema gate: `... e27_service_bench -- --validate <path>`
//!
//! When `BENCH_OUTPUT_DIR` is set, a missing or invalid artifact is a
//! hard error (exit 1), not a warning — CI depends on the file.
//!
//! Honesty note: CI runners (and this author's bench host) are often
//! single-CPU, so worker threads timeslice instead of running in
//! parallel — the latency/throughput columns measure scheduling
//! overhead there, not parallel speedup. The accounting, isolation,
//! and deadline pins are exact on any host and are the load-bearing
//! columns.

use std::process::ExitCode;
use std::time::Duration;

use bench::json::SERVICE_SCHEMA;
use bench::{f2, timed, validate_service_bench, write_artifact, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wfsort_native::{ChaosPlan, JobError, JobOptions, Rejected, ServiceConfig, SortService};

fn random_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..1_000_000)).collect()
}

fn sequential_sort(keys: &[u64]) -> Vec<u64> {
    let mut out = keys.to_vec();
    out.sort_unstable();
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(at) = args.iter().position(|a| a == "--validate") {
        let Some(path) = args.get(at + 1) else {
            eprintln!("usage: e27_service_bench --validate <path>");
            return ExitCode::FAILURE;
        };
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match validate_service_bench(&text) {
            Ok(entries) => {
                println!("{path}: valid {SERVICE_SCHEMA} with {entries} entries");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let quick = args.iter().any(|a| a == "--quick");
    let worker_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };

    // E27a — latency and throughput with many tenants sharing the pool.
    // Every tenant's output is checked bit-identical to a sequential
    // sort before its latency is allowed into the table.
    let n = if quick { 4_000 } else { 20_000 };
    let jobs = if quick { 12 } else { 24 };
    let mut throughput = Vec::new();
    let mut a = Table::new(&[
        "workers",
        "jobs",
        "total ms",
        "jobs/s",
        "mean lat ms",
        "max lat ms",
        "mean queued ms",
    ]);
    for &workers in worker_counts {
        let tenants: Vec<Vec<u64>> = (0..jobs)
            .map(|t| random_keys(n, 2_700 + t as u64))
            .collect();
        let service = SortService::start(
            ServiceConfig::default()
                .workers(workers)
                .queue_capacity(jobs + 1),
        );
        let (results, secs) = timed(|| {
            let tickets: Vec<_> = tenants
                .iter()
                .map(|keys| {
                    service
                        .submit(keys.clone(), JobOptions::default())
                        .expect("queue sized for the full tenant set")
                })
                .collect();
            tickets.into_iter().map(|t| t.wait()).collect::<Vec<_>>()
        });
        service.shutdown();
        let mut identical = true;
        let mut latencies_ms = Vec::new();
        let mut queued_ms = Vec::new();
        let mut imbalances = Vec::new();
        for (keys, result) in tenants.iter().zip(&results) {
            identical &= result.sorted.as_ref().expect("no chaos here") == &sequential_sort(keys);
            latencies_ms.push(result.report.elapsed.as_secs_f64() * 1e3);
            queued_ms.push(result.report.queued.as_secs_f64() * 1e3);
            imbalances.push(
                result
                    .report
                    .sort
                    .shard
                    .as_ref()
                    .map_or(1.0, |s| s.imbalance()),
            );
        }
        assert!(identical, "tenant output diverged at workers={workers}");
        let total_ms = secs * 1e3;
        let jobs_per_s = jobs as f64 / secs;
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let max_lat = latencies_ms.iter().cloned().fold(0.0f64, f64::max);
        a.row(vec![
            workers.to_string(),
            jobs.to_string(),
            f2(total_ms),
            f2(jobs_per_s),
            f2(mean(&latencies_ms)),
            f2(max_lat),
            f2(mean(&queued_ms)),
        ]);
        throughput.push(format!(
            concat!(
                "{{\"workers\":{},\"jobs\":{},\"n\":{},\"total_ms\":{:.3},",
                "\"jobs_per_s\":{:.3},\"mean_latency_ms\":{:.3},",
                "\"max_latency_ms\":{:.3},\"mean_queued_ms\":{:.3},",
                "\"mean_imbalance\":{:.4},\"all_identical\":true}}"
            ),
            workers,
            jobs,
            n,
            total_ms,
            jobs_per_s,
            mean(&latencies_ms),
            max_lat,
            mean(&queued_ms),
            mean(&imbalances),
        ));
    }
    a.print(&format!(
        "E27a: {jobs} tenants x N = {n} over a shared pool (every row's \
         outputs proved bit-identical to sequential sorts before timing \
         was recorded)"
    ));

    // E27b — the deadline-miss table. The zero-deadline row is a pin
    // (a non-trivial job can never beat an already-expired deadline);
    // the generous row should complete everywhere; the tight row is an
    // honest host-dependent measurement.
    let deadline_jobs = if quick { 6 } else { 8 };
    let deadline_n = if quick { 4_000 } else { 20_000 };
    let mut deadlines = Vec::new();
    let mut b = Table::new(&["deadline", "jobs", "missed", "completed"]);
    for &deadline_us in &[0u64, 200, 5_000_000] {
        let service = SortService::start(ServiceConfig::default().workers(2));
        let tickets: Vec<_> = (0..deadline_jobs)
            .map(|t| {
                let keys = random_keys(deadline_n, 5_400 + t as u64);
                service
                    .submit(
                        keys,
                        JobOptions::default().deadline(Duration::from_micros(deadline_us)),
                    )
                    .expect("default queue holds the sweep")
            })
            .collect();
        let mut missed = 0u64;
        let mut completed = 0u64;
        for ticket in tickets {
            match ticket.wait().sorted {
                Ok(_) => completed += 1,
                Err(JobError::DeadlineExpired) => missed += 1,
                Err(e) => panic!("unexpected error in deadline sweep: {e}"),
            }
        }
        service.shutdown();
        assert_eq!(missed + completed, deadline_jobs as u64);
        if deadline_us == 0 {
            assert_eq!(missed, deadline_jobs as u64, "zero deadline must miss all");
        }
        b.row(vec![
            if deadline_us == 0 {
                "0 (pin)".into()
            } else {
                format!("{deadline_us} us")
            },
            deadline_jobs.to_string(),
            missed.to_string(),
            completed.to_string(),
        ]);
        deadlines.push(format!(
            "{{\"deadline_us\":{deadline_us},\"jobs\":{deadline_jobs},\
             \"missed\":{missed},\"completed\":{completed}}}"
        ));
    }
    b.print(&format!(
        "E27b: deadline misses at N = {deadline_n} (zero-deadline row is \
         an exact pin; the tight row depends on host speed and is \
         reported honestly, not asserted)"
    ));

    // E27c — admission control under flood. One paused worker pins the
    // pool while a burst of submissions overruns the bounded queue; the
    // accounting (admitted + rejected == submitted) is exact.
    let flood = 64usize;
    let mut backpressure = Vec::new();
    let mut c = Table::new(&["capacity", "submitted", "admitted", "rejected (queue full)"]);
    for &capacity in &[2usize, 8] {
        let service = SortService::start(
            ServiceConfig::default()
                .workers(1)
                .queue_capacity(capacity)
                .small_sort_cutoff(0),
        );
        // The occupier pauses its only worker stint for 200ms at the
        // first checkpoint — long enough that the burst below runs
        // entirely against a full pool.
        let occupier = service
            .submit(
                random_keys(2_000, 9_000),
                JobOptions::default()
                    .plan(ChaosPlan::new(1).pause_at(0, 1, 200_000))
                    .helpers(1),
            )
            .expect("occupier admitted first");
        let mut admitted_tickets = Vec::new();
        let mut rejected_queue_full = 0u64;
        for t in 0..flood {
            match service.submit(
                random_keys(512, 9_100 + t as u64),
                JobOptions::default().helpers(1),
            ) {
                Ok(ticket) => admitted_tickets.push(ticket),
                Err(Rejected::QueueFull { capacity: cap }) => {
                    assert_eq!(cap, capacity, "typed rejection names the bound");
                    rejected_queue_full += 1;
                }
                Err(Rejected::ShuttingDown) => panic!("service is not shutting down"),
            }
        }
        let admitted = admitted_tickets.len() as u64;
        assert_eq!(admitted + rejected_queue_full, flood as u64);
        assert!(rejected_queue_full > 0, "the flood must overrun the queue");
        occupier
            .wait()
            .sorted
            .expect("occupier finishes after pause");
        for ticket in admitted_tickets {
            ticket.wait().sorted.expect("admitted jobs drain");
        }
        let stats = service.shutdown();
        assert_eq!(stats.rejected_queue_full, rejected_queue_full);
        c.row(vec![
            capacity.to_string(),
            flood.to_string(),
            admitted.to_string(),
            rejected_queue_full.to_string(),
        ]);
        backpressure.push(format!(
            "{{\"capacity\":{capacity},\"submitted\":{flood},\
             \"admitted\":{admitted},\"rejected_queue_full\":{rejected_queue_full}}}"
        ));
    }
    c.print(
        "E27c: bounded-queue backpressure with the single worker paused \
         mid-stint (accounting is exact: every submission is either \
         admitted or typed-rejected, and the rejection names the bound)",
    );

    // E27d — chaos-recovery storms. Per seed: one victim whose three
    // chaos slots crash/stall/pause while four healthy tenants share
    // the pool. Healthy outputs must be bit-identical; the publication
    // ledger must balance.
    let storm_seeds: u64 = if quick { 3 } else { 6 };
    let mut recovery = Vec::new();
    let mut d = Table::new(&[
        "seed",
        "victim outcome",
        "recoveries",
        "workers lost",
        "healthy identical",
    ]);
    for seed in 0..storm_seeds {
        let service = SortService::start(
            ServiceConfig::default()
                .workers(2)
                .max_recoveries(2)
                .queue_capacity(16),
        );
        let victim_keys = random_keys(1_500, 31_000 + seed);
        // Six chaos slots cover the two claims and both recovery stints
        // with headroom; ~95% of them crash within the first 40
        // checkpoints — far before a 1500-key stint can finish — so
        // most seeds strand the job at least once and some exhaust the
        // recovery allowance entirely.
        let plan = ChaosPlan::random_crashes(6, 0.95, 40, seed)
            .pause_at(0, 5, 200)
            .stall_at(1, 7, 500);
        let victim = service
            .submit(
                victim_keys.clone(),
                JobOptions::default().plan(plan).helpers(2),
            )
            .unwrap();
        let tenants: Vec<Vec<u64>> = (0..4)
            .map(|t| random_keys(1_200, 32_000 + seed * 8 + t))
            .collect();
        let tickets: Vec<_> = tenants
            .iter()
            .map(|keys| service.submit(keys.clone(), JobOptions::default()).unwrap())
            .collect();
        let mut healthy_identical = true;
        for (keys, ticket) in tenants.iter().zip(tickets) {
            healthy_identical &=
                ticket.wait().sorted.expect("healthy tenant") == sequential_sort(keys);
        }
        assert!(healthy_identical, "seed {seed}: isolation breached");
        let victim_result = victim.wait();
        let victim_outcome = match &victim_result.sorted {
            Ok(sorted) => {
                assert_eq!(sorted, &sequential_sort(&victim_keys), "seed {seed}");
                if victim_result.report.recoveries > 0 {
                    "recovered"
                } else {
                    "completed"
                }
            }
            Err(JobError::WorkersLost { .. }) => "failed_typed",
            Err(e) => panic!("seed {seed}: unexpected victim error {e}"),
        };
        let stats = service.shutdown();
        assert_eq!(stats.admitted, 5);
        assert_eq!(stats.completed + stats.workers_lost, 5);
        d.row(vec![
            seed.to_string(),
            victim_outcome.into(),
            stats.crash_recoveries.to_string(),
            stats.workers_lost.to_string(),
            "yes".into(),
        ]);
        recovery.push(format!(
            "{{\"seed\":{seed},\"admitted\":{},\"completed\":{},\
             \"workers_lost\":{},\"crash_recoveries\":{},\
             \"healthy_identical\":true,\"victim_outcome\":\"{victim_outcome}\"}}",
            stats.admitted, stats.completed, stats.workers_lost, stats.crash_recoveries,
        ));
    }
    d.print(
        "E27d: seeded chaos storms against one tenant (crash + stall + \
         pause) while four healthy tenants share the pool — healthy \
         outputs bit-identical on every seed; the victim recovers or \
         fails typed, never hangs; completed + workers_lost == admitted",
    );

    // E27e — work conservation and weighted fairness. Row one: a single
    // large plan-free tenant with an otherwise empty queue must pull
    // the idle workers in as helper stints (the paper's helping
    // discipline lifted to the pool: extra participants only ever
    // speed a sort up). Row two: with the pool blocked, weight-8
    // tenants submitted *behind* weight-1 tenants must overtake them
    // in the deficit pick, and every output must still be
    // bit-identical to a sequential sort.
    let mut fairness = Vec::new();
    let mut e = Table::new(&[
        "mode",
        "workers",
        "jobs",
        "queue picks",
        "weighted picks",
        "helper stints",
        "stints dispatched",
    ]);
    {
        let helper_n = if quick { 60_000 } else { 200_000 };
        let service = SortService::start(ServiceConfig::default().workers(4).sharded_cutoff(4_096));
        let keys = random_keys(helper_n, 41_000);
        let ticket = service
            .submit(keys.clone(), JobOptions::default().helpers(1))
            .expect("empty queue admits the lone tenant");
        let identical = ticket.wait().sorted.expect("no chaos here") == sequential_sort(&keys);
        assert!(identical, "helper-joined output diverged");
        let stats = service.shutdown();
        assert!(
            stats.helper_stints > 0,
            "idle workers must join the in-flight job: {stats:?}"
        );
        // One queue entry existed (helpers = 1), so every further stint
        // was a helper join: the job's occupancy is exactly
        // queue_picks + helper_stints.
        let dispatched = stats.queue_picks + stats.helper_stints;
        assert!(dispatched >= 2, "multi-worker occupancy: {stats:?}");
        e.row(vec![
            "helper-join".into(),
            "4".into(),
            "1".into(),
            stats.queue_picks.to_string(),
            stats.weighted_picks.to_string(),
            stats.helper_stints.to_string(),
            dispatched.to_string(),
        ]);
        fairness.push(format!(
            "{{\"mode\":\"helper-join\",\"workers\":4,\"jobs\":1,\
             \"completed\":{},\"queue_picks\":{},\"weighted_picks\":{},\
             \"helper_stints\":{},\"max_stints\":{dispatched},\
             \"all_identical\":true}}",
            stats.completed, stats.queue_picks, stats.weighted_picks, stats.helper_stints,
        ));
    }
    {
        let service = SortService::start(ServiceConfig::default().workers(1));
        let big = random_keys(2_000, 42_000);
        let blocker = service
            .submit(
                big.clone(),
                JobOptions::default()
                    .plan(ChaosPlan::new(1).pause_at(0, 1, 100_000))
                    .helpers(1),
            )
            .expect("blocker admitted first");
        let mut tenants = Vec::new();
        let mut tickets = Vec::new();
        for (t, weight) in (0u64..8).map(|t| (t, if t < 4 { 1u32 } else { 8 })) {
            let keys = random_keys(3_000, 42_100 + t);
            tickets.push(
                service
                    .submit(
                        keys.clone(),
                        JobOptions::default().helpers(1).weight(weight),
                    )
                    .expect("default queue holds the cohort"),
            );
            tenants.push(keys);
        }
        let mut identical = blocker.wait().sorted.expect("pause lifts") == sequential_sort(&big);
        let mut max_stints = 1u64;
        for (keys, ticket) in tenants.iter().zip(tickets) {
            let result = ticket.wait();
            identical &= result.sorted.expect("no chaos here") == sequential_sort(keys);
            max_stints = max_stints.max(result.report.stints as u64);
        }
        assert!(identical, "weighted-cohort output diverged");
        let stats = service.shutdown();
        assert!(
            stats.weighted_picks >= 1,
            "weight-8 tenants queued behind weight-1 tenants must overtake: {stats:?}"
        );
        assert!(stats.weighted_picks <= stats.queue_picks);
        e.row(vec![
            "weighted".into(),
            "1".into(),
            "9".into(),
            stats.queue_picks.to_string(),
            stats.weighted_picks.to_string(),
            stats.helper_stints.to_string(),
            max_stints.to_string(),
        ]);
        fairness.push(format!(
            "{{\"mode\":\"weighted\",\"workers\":1,\"jobs\":9,\
             \"completed\":{},\"queue_picks\":{},\"weighted_picks\":{},\
             \"helper_stints\":{},\"max_stints\":{max_stints},\
             \"all_identical\":true}}",
            stats.completed, stats.queue_picks, stats.weighted_picks, stats.helper_stints,
        ));
    }
    e.print(
        "E27e: work conservation and weighted fairness — idle workers \
         join the lone in-flight sharded job as helper stints \
         (occupancy = queue picks + helper joins), weight-8 tenants \
         overtake weight-1 in the deficit pick, outputs bit-identical",
    );

    let artifact = format!(
        "{{\"schema\":\"{SERVICE_SCHEMA}\",\"experiment\":\"e27_service_bench\",\
         \"quick\":{quick},\
         \"throughput\":[\n{}\n],\
         \"deadlines\":[\n{}\n],\
         \"backpressure\":[\n{}\n],\
         \"recovery\":[\n{}\n],\
         \"fairness\":[\n{}\n]}}\n",
        throughput.join(",\n"),
        deadlines.join(",\n"),
        backpressure.join(",\n"),
        recovery.join(",\n"),
        fairness.join(",\n"),
    );
    // Self-gate before writing: a malformed artifact must never land.
    if let Err(e) = validate_service_bench(&artifact) {
        eprintln!("error: generated artifact fails its own schema: {e}");
        return ExitCode::FAILURE;
    }
    if std::env::var_os("BENCH_OUTPUT_DIR").is_some() {
        match write_artifact("BENCH_service.json", &artifact) {
            Some(path) => match std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|t| validate_service_bench(&t).map_err(|e| e.to_string()))
            {
                Ok(entries) => {
                    println!("\nBENCH_service.json: {entries} entries, schema {SERVICE_SCHEMA}")
                }
                Err(e) => {
                    eprintln!("error: written artifact failed re-validation: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => {
                eprintln!("error: BENCH_OUTPUT_DIR is set but the artifact was not written");
                return ExitCode::FAILURE;
            }
        }
    } else {
        eprintln!("(BENCH_OUTPUT_DIR unset: BENCH_service.json not persisted)");
    }

    println!(
        "\nPaper tie-in (§1.1): the paper's wait-freedom is a statement \
         about one sort surviving its own participants' failures. The \
         service layer lifts it to a statement about *neighbors*: a \
         tenant's crashed workers strand only that tenant's job, which \
         a fresh stint finishes — so isolation falls out of the Work \
         Assignment Trees rather than being bolted on. Caveat repeated \
         from the header: on a single-CPU host the workers timeslice, \
         so the latency/throughput columns measure scheduling overhead, \
         not parallelism; the accounting and isolation pins are the \
         load-bearing columns."
    );
    ExitCode::SUCCESS
}
