//! E3 — Lemma 2.4: `build_tree`'s insertion loop is bounded (wait-free),
//! phase 1 completes on any input order and under crashes, and the
//! resulting tree is a valid pivot tree (Lemma 2.5).
//!
//! Run: `cargo run --release -p bench --bin e3_buildtree_bound`

use bench::{f2, Table};
use pram::{failure::FailurePlan, Machine, MemoryLayout, Pid, SyncScheduler};
use wat::Wat;
use wfsort::{validate_pivot_tree, BuildTreeWorker, ElementArrays, Workload};

/// Runs phase 1 alone; returns (cycles, total ops, tree depth).
fn build(keys: &[i64], nprocs: usize, crash_all_but_one: bool) -> (u64, u64, usize) {
    let n = keys.len();
    let mut layout = MemoryLayout::new();
    let arrays = ElementArrays::layout(&mut layout, n);
    let wat = Wat::layout(&mut layout, n - 1);
    let mut machine = Machine::with_seed(layout.total(), 42);
    arrays.load_keys(machine.memory_mut(), keys);
    for r in arrays.child_regions() {
        machine.memory_mut().watch_write_once(r.range());
    }
    for p in wat.processes(nprocs, |_| BuildTreeWorker::for_full_sort(arrays)) {
        machine.add_process(p);
    }
    let report = if crash_all_but_one {
        let mut plan = FailurePlan::new();
        for v in 1..nprocs {
            plan = plan.crash_at(2 * v as u64, Pid::new(v));
        }
        machine
            .run_with_failures(&mut SyncScheduler, &plan, 1_000_000_000)
            .expect("wait-free: must terminate")
    } else {
        machine
            .run(&mut SyncScheduler, 1_000_000_000)
            .expect("wait-free: must terminate")
    };
    let stats = validate_pivot_tree(machine.memory(), &arrays, 1, n).expect("tree must be valid");
    (report.metrics.cycles, report.metrics.total_ops, stats.depth)
}

fn main() {
    let n = 1024;
    let mut t = Table::new(&[
        "workload",
        "P",
        "crashes",
        "cycles",
        "ops",
        "ops/N",
        "tree depth",
    ]);
    for w in [
        Workload::RandomPermutation,
        Workload::UniformRandom,
        Workload::Sorted,
        Workload::Reverse,
    ] {
        let keys = w.generate(n, 7);
        for (nprocs, crash) in [(n, false), (64, false), (64, true)] {
            let (cycles, ops, depth) = build(&keys, nprocs, crash);
            t.row(vec![
                w.name().to_string(),
                nprocs.to_string(),
                if crash { "P-1".into() } else { "0".into() },
                cycles.to_string(),
                ops.to_string(),
                f2(ops as f64 / n as f64),
                depth.to_string(),
            ]);
        }
    }
    t.print(&format!(
        "E3: phase 1 (build_tree) cost and validity, N = {n} (Lemmas 2.4 & 2.5)"
    ));
    println!(
        "\nPaper claims: the insertion loop runs at most N-1 times per \
         element; the tree is a sorted binary tree over all records; the \
         phase completes despite crashes. Shape checks: random inputs give \
         depth ~ 2..3 log2 N = {:.0}..{:.0}; sorted/reverse inputs \
         degenerate to depth ~ N-ish chains (motivating E12); crashing \
         P-1 processors changes cost, never correctness.",
        2.0 * bench::log2(n),
        3.0 * bench::log2(n)
    );
}
