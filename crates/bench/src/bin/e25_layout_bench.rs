//! E25 — memory layout and grain size on the native hot path: the
//! cache-packed pivot tree raced against the pre-packing five-array
//! layout, the analytical cache-lines-touched ledger behind that race,
//! the block-grain sweep of WAT claim traffic, and the arena-reuse
//! amortization, persisted as the schema-stable `BENCH_layout.json`
//! perf artifact.
//!
//! The packed [`wfsort_native::SharedTree`] shrinks each node's five
//! shared words (small/big child, size, place, place-done flag) to two
//! `u32` child arrays (16 nodes per cache line, double the legacy
//! density) plus one 16-byte meta cell, so a place visit touches three
//! cache lines where the old parallel-array layout touched five — while
//! keeping the side-select a predictable branch so descents stay
//! latency-matched with legacy (see DESIGN.md §10 for the rejected
//! drafts that lost exactly there). The legacy layout
//! survives behind the `legacy-layout` feature
//! precisely so this experiment (and the differential tests) can keep
//! measuring the claim instead of asserting it from memory.
//!
//! Run: `cargo run --release -p bench --bin e25_layout_bench`
//! CI smoke: `... e25_layout_bench -- --quick`
//! Schema gate: `... e25_layout_bench -- --validate <path>`
//!
//! When `BENCH_OUTPUT_DIR` is set, a missing or invalid artifact is a
//! hard error (exit 1), not a warning — CI depends on the file.

use std::process::ExitCode;

use bench::json::LAYOUT_SCHEMA;
use bench::{f2, timed, validate_layout_bench, write_artifact, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wfsort_native::{
    recommended_grain, LegacySharedTree, NativeAllocation, SortArena, SortJob, WaitFreeSorter,
};

/// The swept input shapes (the E24 trio; degenerate spines excluded for
/// the same reason — they measure tree depth, not memory layout).
fn shapes(n: usize) -> Vec<(&'static str, Vec<u64>)> {
    let mut rng = StdRng::seed_from_u64(25);
    let uniform: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
    let few: Vec<u64> = (0..n).map(|_| rng.gen_range(0..64)).collect();
    let sawtooth: Vec<u64> = (0..n).map(|i| (i % 1009) as u64).collect();
    vec![
        ("uniform-random", uniform),
        ("few-distinct", few),
        ("sawtooth", sawtooth),
    ]
}

/// Best-of-`repeats` wall time for sorting `keys` on `threads` threads
/// with the packed layout. Returns (best seconds, output matched).
fn time_packed(keys: &[u64], expect: &[u64], threads: usize, repeats: usize) -> (f64, bool) {
    let sorter = WaitFreeSorter::new(threads);
    let grain = recommended_grain(keys.len(), threads);
    let mut best = f64::INFINITY;
    let mut ok = true;
    for _ in 0..repeats {
        let job = SortJob::with_grain(
            keys.to_vec(),
            NativeAllocation::Deterministic,
            threads,
            grain,
        );
        let (_, secs) = timed(|| sorter.run_job(&job));
        ok &= job.into_sorted() == expect;
        best = best.min(secs);
    }
    (best, ok)
}

/// Same measurement against the five-parallel-array legacy tree. The
/// grain matches the packed run so the only variable is memory layout.
fn time_legacy(keys: &[u64], expect: &[u64], threads: usize, repeats: usize) -> (f64, bool) {
    let sorter = WaitFreeSorter::new(threads);
    let grain = recommended_grain(keys.len(), threads);
    let mut best = f64::INFINITY;
    let mut ok = true;
    for _ in 0..repeats {
        let job = SortJob::<u64, LegacySharedTree>::with_layout(
            keys.to_vec(),
            NativeAllocation::Deterministic,
            threads,
            grain,
        );
        let (_, secs) = timed(|| sorter.run_job(&job));
        ok &= job.into_sorted() == expect;
        best = best.min(secs);
    }
    (best, ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if let Some(at) = args.iter().position(|a| a == "--validate") {
        let path = match args.get(at + 1) {
            Some(p) => p,
            None => {
                eprintln!("--validate needs a path");
                return ExitCode::FAILURE;
            }
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: could not read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match validate_layout_bench(&text) {
            Ok(entries) => {
                println!("{path}: valid {LAYOUT_SCHEMA} with {entries} entries");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let quick = args.iter().any(|a| a == "--quick");
    let n = if quick { 20_000 } else { 100_000 };
    let thread_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let repeats = if quick { 3 } else { 5 };

    // E25a — packed vs legacy throughput. Same keys, same thread count,
    // same grain; only the node layout differs.
    let mut throughput = Vec::new();
    let mut a = Table::new(&["shape", "threads", "packed ms", "legacy ms", "speedup"]);
    let mut packed_losses = 0usize;
    for (shape, keys) in shapes(n) {
        let mut expect = keys.clone();
        expect.sort_unstable();
        for &threads in thread_counts {
            let (packed, packed_ok) = time_packed(&keys, &expect, threads, repeats);
            let (legacy, legacy_ok) = time_legacy(&keys, &expect, threads, repeats);
            assert!(packed_ok, "packed output unsorted at {threads}x{shape}");
            assert!(legacy_ok, "legacy output unsorted at {threads}x{shape}");
            let speedup = legacy / packed;
            if speedup < 1.0 {
                packed_losses += 1;
            }
            a.row(vec![
                shape.into(),
                threads.to_string(),
                f2(packed * 1e3),
                f2(legacy * 1e3),
                format!("{speedup:.2}x"),
            ]);
            throughput.push(format!(
                concat!(
                    "{{\"shape\":\"{}\",\"n\":{},\"threads\":{},",
                    "\"packed_ms\":{:.3},\"legacy_ms\":{:.3},\"speedup\":{:.3},",
                    "\"packed_sorted\":true,\"legacy_sorted\":true}}"
                ),
                shape,
                n,
                threads,
                packed * 1e3,
                legacy * 1e3,
                speedup,
            ));
        }
    }
    a.print(&format!(
        "E25a: packed vs legacy node layout at N = {n} (best of {repeats}; \
         speedup = legacy/packed)"
    ));
    if packed_losses > 0 {
        eprintln!(
            "warning: packed slower than legacy on {packed_losses} \
             shape/thread points — expect noise on a loaded host; rerun \
             with more repeats before drawing conclusions"
        );
    }

    // E25b — the analytical ledger: cache lines touched per traversal
    // step. The per-phase operation counts are layout-independent (the
    // differential tests in tests/layout_parity.rs pin this), so one
    // instrumented packed run provides the step counts and the
    // lines-per-step factors follow from the two layouts' geometry:
    //
    //   build descent: 1 line/step either way (one probe into small[]
    //     or big[]) — though the packed arrays are half the footprint
    //     (4 bytes/node per side vs 8, 16 nodes per line instead of 8),
    //     which the estimate does not credit;
    //   sum visit: packed 3 (small[], big[], meta cell), legacy 3
    //     (small[], big[], size[]) — the density, not the line count,
    //     is the packed win here;
    //   place visit: packed 3 (the meta cell covers size, place, and
    //     the folded done bit in one line), legacy 5 (small[], big[],
    //     size[], place[], place_done[]).
    let n_ledger = 4096;
    let (shape, keys) = shapes(n_ledger).swap_remove(0);
    let job = SortJob::with_grain(keys.clone(), NativeAllocation::Deterministic, 1, 1);
    let report = WaitFreeSorter::new(1).run_job_with_report(&job);
    {
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(job.into_sorted(), expect, "ledger run unsorted");
    }
    let p = &report.per_phase;
    let mut cache_lines = Vec::new();
    let mut b = Table::new(&["phase", "steps", "packed lines", "legacy lines", "ratio"]);
    for (phase, steps, packed_per, legacy_per) in [
        ("build", p.build.descent_steps, 1u64, 1u64),
        ("sum", p.sum.visits, 3, 3),
        ("place", p.place.visits, 3, 5),
    ] {
        let packed_lines = steps * packed_per;
        let legacy_lines = steps * legacy_per;
        b.row(vec![
            phase.into(),
            steps.to_string(),
            packed_lines.to_string(),
            legacy_lines.to_string(),
            format!("{:.1}x", legacy_lines as f64 / packed_lines.max(1) as f64),
        ]);
        cache_lines.push(format!(
            concat!(
                "{{\"phase\":\"{}\",\"n\":{},",
                "\"packed_lines_per_step\":{},\"legacy_lines_per_step\":{},",
                "\"packed_lines\":{},\"legacy_lines\":{}}}"
            ),
            phase, n_ledger, packed_per, legacy_per, packed_lines, legacy_lines,
        ));
    }
    b.print(&format!(
        "E25b: estimated cache lines touched per phase on {shape} keys, \
         N = {n_ledger} (step counts measured, lines/step from layout \
         geometry)"
    ));

    // E25c — grain sweep: block-grained work assignment shrinks the WAT
    // claim traffic by ~B while per-element claims stay put. Single
    // thread, deterministic allocation: every count below is exact, and
    // the validator recomputes build_block_claims from (n, grain).
    let n_sweep = 4096u64;
    let sweep_keys: Vec<u64> = {
        let mut rng = StdRng::seed_from_u64(2525);
        (0..n_sweep).map(|_| rng.gen()).collect()
    };
    let mut sweep_expect = sweep_keys.clone();
    sweep_expect.sort_unstable();
    let mut grain_sweep = Vec::new();
    let mut c = Table::new(&[
        "grain",
        "build claims",
        "build block claims",
        "scatter block claims",
        "ms",
    ]);
    let mut claims_at_grain_1 = 0u64;
    for grain in [1usize, 2, 7, 64] {
        let job = SortJob::with_grain(
            sweep_keys.clone(),
            NativeAllocation::Deterministic,
            1,
            grain,
        );
        let (report, secs) = timed(|| WaitFreeSorter::new(1).run_job_with_report(&job));
        assert_eq!(job.into_sorted(), sweep_expect, "sweep run unsorted");
        let p = &report.per_phase;
        let jobs = (n_sweep - 1).div_ceil(grain as u64);
        assert_eq!(
            p.build.block_claims, jobs,
            "single-threaded block claims must equal ceil((n-1)/grain)"
        );
        if grain == 1 {
            claims_at_grain_1 = p.build.block_claims;
            assert_eq!(
                p.build.claims, p.build.block_claims,
                "grain 1: one block per item"
            );
        } else {
            assert_eq!(
                p.build.claims, claims_at_grain_1,
                "per-element claims are grain-independent"
            );
        }
        c.row(vec![
            grain.to_string(),
            p.build.claims.to_string(),
            p.build.block_claims.to_string(),
            p.scatter.block_claims.to_string(),
            f2(secs * 1e3),
        ]);
        grain_sweep.push(format!(
            concat!(
                "{{\"n\":{},\"grain\":{},\"build_claims\":{},",
                "\"build_block_claims\":{},\"scatter_block_claims\":{},",
                "\"elapsed_ms\":{:.3},\"sorted\":true}}"
            ),
            n_sweep,
            grain,
            p.build.claims,
            p.build.block_claims,
            p.scatter.block_claims,
            secs * 1e3,
        ));
        // The headline acceptance gate: the auto-selected grain (B = 64
        // at this n and worker count, present in the sweep) cuts
        // build-phase WAT claim traffic by at least 4x at N = 4096.
        // Small sweep grains reduce by exactly their own factor (the
        // equality assert above), so only grains >= 4 can clear 4x.
        if grain >= 4 {
            assert!(
                p.build.block_claims * 4 <= claims_at_grain_1,
                "grain {grain} cut block claims only {claims_at_grain_1} -> {}",
                p.build.block_claims
            );
        }
    }
    assert_eq!(
        recommended_grain(n_sweep as usize, 1),
        64,
        "the sweep must include the auto-selected grain"
    );
    c.print(&format!(
        "E25c: WAT claim traffic vs grain at N = {n_sweep}, 1 thread \
         (block claims shrink ~Bx; per-element claims are pinned)"
    ));

    // E25d — arena reuse: total time for `rounds` sorts with a fresh job
    // each round vs recycling one SortArena.
    let n_arena = if quick { 4096 } else { 20_000 };
    let rounds = if quick { 8 } else { 12 };
    let sorter = WaitFreeSorter::new(thread_counts[thread_counts.len() - 1]);
    let arena_keys: Vec<Vec<u64>> = (0..rounds)
        .map(|r| {
            let mut rng = StdRng::seed_from_u64(4200 + r as u64);
            (0..n_arena).map(|_| rng.gen()).collect()
        })
        .collect();
    let mut arena_ok = true;
    let (_, fresh_secs) = timed(|| {
        for keys in &arena_keys {
            let sorted = sorter.sort(keys);
            arena_ok &= sorted.windows(2).all(|w| w[0] <= w[1]);
        }
    });
    let mut arena = SortArena::new();
    let mut out = Vec::new();
    let (_, arena_secs) = timed(|| {
        for keys in &arena_keys {
            sorter.sort_into(keys, &mut arena, &mut out);
            arena_ok &= out.windows(2).all(|w| w[0] <= w[1]);
        }
    });
    assert!(arena_ok, "arena round produced unsorted output");
    let mut d = Table::new(&["rounds", "n", "fresh ms", "arena ms", "saved"]);
    d.row(vec![
        rounds.to_string(),
        n_arena.to_string(),
        f2(fresh_secs * 1e3),
        f2(arena_secs * 1e3),
        format!("{:+.1}%", (1.0 - arena_secs / fresh_secs) * 1e2),
    ]);
    d.print(
        "E25d: allocation amortization — fresh job per sort vs one \
         recycled SortArena (same keys, same sorter)",
    );
    let arena_json = format!(
        concat!(
            "{{\"n\":{},\"rounds\":{},\"fresh_ms\":{:.3},\"arena_ms\":{:.3},",
            "\"sorted\":true}}"
        ),
        n_arena,
        rounds,
        fresh_secs * 1e3,
        arena_secs * 1e3,
    );

    let artifact = format!(
        "{{\"schema\":\"{LAYOUT_SCHEMA}\",\"experiment\":\"e25_layout_bench\",\
         \"quick\":{quick},\
         \"throughput\":[\n{}\n],\
         \"cache_lines\":[\n{}\n],\
         \"grain_sweep\":[\n{}\n],\
         \"arena\":[\n{}\n]}}\n",
        throughput.join(",\n"),
        cache_lines.join(",\n"),
        grain_sweep.join(",\n"),
        arena_json,
    );
    // Self-gate before writing: a malformed artifact must never land.
    if let Err(e) = validate_layout_bench(&artifact) {
        eprintln!("error: generated artifact fails its own schema: {e}");
        return ExitCode::FAILURE;
    }
    if std::env::var_os("BENCH_OUTPUT_DIR").is_some() {
        match write_artifact("BENCH_layout.json", &artifact) {
            Some(path) => match std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|t| validate_layout_bench(&t).map_err(|e| e.to_string()))
            {
                Ok(entries) => {
                    println!("\nBENCH_layout.json: {entries} entries, schema {LAYOUT_SCHEMA}")
                }
                Err(e) => {
                    eprintln!("error: written artifact failed re-validation: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => {
                eprintln!("error: BENCH_OUTPUT_DIR is set but the artifact was not written");
                return ExitCode::FAILURE;
            }
        }
    } else {
        eprintln!("(BENCH_OUTPUT_DIR unset: BENCH_layout.json not persisted)");
    }

    println!(
        "\nPaper tie-in (§3): the pivot tree is the algorithm's one shared \
         data structure; halving the child arrays and folding the three \
         traversal words into one cell cuts the place traversal's line \
         count 5-to-3 and doubles descent-array density by geometry, \
         and block-grained work assignment divides the WAT claim CAS \
         traffic by the grain while leaving the paper's per-element \
         operation counts — and the PRAM-parity pins built on them — \
         untouched. Timings above are from a single shared host; the \
         deterministic counter columns are the load-bearing ones."
    );
    ExitCode::SUCCESS
}
