//! E9 — wait-freedom under fire: the sort completes with correct output
//! no matter how many processors crash (as long as one survives), with
//! running time degrading roughly as work / survivors.
//!
//! Run: `cargo run --release -p bench --bin e9_failures`

use bench::{f2, mean, Table};
use pram::{failure::FailurePlan, SyncScheduler};
use wfsort::{check_sorted_permutation, PramSorter, SortConfig, Workload};

fn main() {
    let n = 1024;
    let p = 32;
    let keys = Workload::RandomPermutation.generate(n, 5);
    let trials = 5;

    let mut t = Table::new(&[
        "crash fraction",
        "survivors (mean)",
        "cycles (mean)",
        "slowdown",
        "sorted?",
    ]);
    let mut baseline = 0.0;
    for fraction in [0.0, 0.25, 0.5, 0.75, 0.9] {
        let mut cycles = Vec::new();
        let mut survivors = Vec::new();
        for s in 0..trials {
            let plan = FailurePlan::random_crashes(p, fraction, 300, 900 + s);
            let outcome = PramSorter::new(SortConfig::new(p).seed(900 + s))
                .sort_under(&keys, &mut SyncScheduler, &plan)
                .expect("wait-free: completes with any survivor");
            check_sorted_permutation(&keys, &outcome.sorted).expect("sorted");
            cycles.push(outcome.report.metrics.cycles as f64);
            survivors.push((p - plan.crash_victims()) as f64);
        }
        let c = mean(&cycles);
        if fraction == 0.0 {
            baseline = c;
        }
        t.row(vec![
            f2(fraction),
            f2(mean(&survivors)),
            f2(c),
            f2(c / baseline),
            "yes".into(),
        ]);
    }
    t.print(&format!(
        "E9: sorting N = {n} with P = {p} under random crash storms (crashes at random cycles in [0, 300))"
    ));

    // Fail-revive storms (§1.1's undetectable-restart model): every
    // processor goes down and silently resumes, repeatedly.
    let mut r = Table::new(&["revive rounds/proc", "cycles (mean)", "slowdown", "sorted?"]);
    for rounds in [1usize, 4, 16] {
        let mut cycles = Vec::new();
        for s in 0..trials {
            let plan = pram::failure::FailurePlan::random_crash_revive(p, rounds, 2_000, 700 + s);
            let outcome = PramSorter::new(SortConfig::new(p).seed(700 + s))
                .sort_under(&keys, &mut SyncScheduler, &plan)
                .expect("revivals are delays; completion guaranteed");
            check_sorted_permutation(&keys, &outcome.sorted).expect("sorted");
            cycles.push(outcome.report.metrics.cycles as f64);
        }
        let c = mean(&cycles);
        r.row(vec![
            rounds.to_string(),
            f2(c),
            f2(c / baseline),
            "yes".into(),
        ]);
    }
    r.print(&format!(
        "E9b: fail-revive storms, N = {n}, P = {p} (every processor crashes and resumes `rounds` times)"
    ));
    println!(
        "\nPaper claim (the definition of wait-freedom, §1): the sort \
         completes despite any failures. Shape checks: the 'sorted?' \
         column is always yes; slowdown grows roughly like \
         P / survivors as the remaining processors absorb the work."
    );
}
