//! E14 (extension) — ablations of the §3 design choices DESIGN.md calls
//! out: how many fat-tree duplicates are needed, how many write-most
//! rounds, and what happens if the full build uses the deterministic WAT
//! instead of the LC-WAT.
//!
//! Run: `cargo run --release -p bench --bin e14_ablations`

use bench::Table;
use wfsort::low_contention::{LowContentionConfig, LowContentionSorter};
use wfsort::{check_sorted_permutation, Workload};

fn run(n: usize, config: LowContentionConfig, keys: &[i64]) -> (u64, usize, u64) {
    let outcome = LowContentionSorter::new(config)
        .sort(keys)
        .expect("sort completes");
    check_sorted_permutation(keys, &outcome.sorted).expect("sorted");
    let m = &outcome.report.metrics;
    let _ = n;
    (m.cycles, m.max_contention, m.qrqw_time)
}

fn main() {
    let n = 1024; // P = N, sqrt(P) = 32
    let keys = Workload::RandomPermutation.generate(n, 31);
    let sqrt_p = 32;

    let mut a = Table::new(&["fat copies", "cycles", "max contention", "QRQW time"]);
    for copies in [1usize, 4, 8, 16, 32, 64] {
        let (cycles, contention, qrqw) = run(
            n,
            LowContentionConfig {
                fat_copies: Some(copies),
                ..Default::default()
            },
            &keys,
        );
        a.row(vec![
            format!(
                "{copies}{}",
                if copies == sqrt_p { " (=sqrt P)" } else { "" }
            ),
            cycles.to_string(),
            contention.to_string(),
            qrqw.to_string(),
        ]);
    }
    a.print(&format!(
        "E14a: fat-tree duplicate count, N = P = {n} (paper: sqrt(P) copies)"
    ));

    let mut b = Table::new(&["fill rounds", "cycles", "max contention", "QRQW time"]);
    for rounds in [1usize, 2, 5, 10, 20, 40] {
        let (cycles, contention, qrqw) = run(
            n,
            LowContentionConfig {
                fill_rounds: Some(rounds),
                ..Default::default()
            },
            &keys,
        );
        b.row(vec![
            format!("{rounds}{}", if rounds == 20 { " (=2 log P)" } else { "" }),
            cycles.to_string(),
            contention.to_string(),
            qrqw.to_string(),
        ]);
    }
    b.print("E14b: write-most rounds (paper: log P); fewer rounds leave fat cells empty, forcing authoritative-slice fallbacks");

    let mut c = Table::new(&[
        "full-build allocator",
        "cycles",
        "max contention",
        "QRQW time",
    ]);
    for det in [false, true] {
        let (cycles, contention, qrqw) = run(
            n,
            LowContentionConfig {
                deterministic_full_build: det,
                ..Default::default()
            },
            &keys,
        );
        c.row(vec![
            if det {
                "deterministic WAT"
            } else {
                "LC-WAT (paper)"
            }
            .to_string(),
            cycles.to_string(),
            contention.to_string(),
            qrqw.to_string(),
        ]);
    }
    c.print("E14c: §3.2's 'work is distributed using LC-WATs' assumption, ablated");

    println!(
        "\nFindings: (a) measured contention is nearly flat in the copy \
         count — the LC-WAT already spreads builders' arrival times, so \
         few of them read the fat root in the same cycle; the sqrt(P) \
         duplicates are the paper's *worst-case* (synchronous-arrival) \
         insurance, visible only as the slightly higher tail at 1 copy. \
         (b) correctness never depends on fill rounds (fallbacks are \
         authoritative); rounds beyond ~log P only add fill-phase cycles. \
         (c) the assumption that matters is §3.2's LC-WAT: swapping in \
         the deterministic WAT reintroduces an O(P) pile-up at the build \
         tail (contention 31 -> ~300, QRQW time x5 at P = 1024)."
    );
}
