//! E10 — §1.1's comparison: making a classic `O(log^2 N)`-depth network
//! sort wait-free by simulating each synchronous step with certified
//! write-all costs `O(log^3 N)`, versus this paper's direct `O(log N)`
//! at `P = N`. Both competitors here are wait-free and crash-tolerant;
//! only the time differs.
//!
//! Run: `cargo run --release -p bench --bin e10_vs_simulation`

use baselines::SimulatedNetworkSorter;
use bench::{f2, log2, Table};
use wfsort::{check_sorted_permutation, PramSorter, SortConfig, Workload};

fn main() {
    let mut t = Table::new(&[
        "N = P",
        "wait-free sort (cycles)",
        "simulated network (cycles)",
        "ratio",
        "log2^2 N",
    ]);
    for k in [4u32, 6, 8, 10] {
        let n = 1usize << k;
        let keys = Workload::RandomPermutation.generate(n, 23);

        let ours = PramSorter::new(SortConfig::new(n).seed(23))
            .sort(&keys)
            .expect("sort completes");
        check_sorted_permutation(&keys, &ours.sorted).expect("ours sorted");

        let sim = SimulatedNetworkSorter::new(n)
            .sort(&keys)
            .expect("simulated sort completes");
        check_sorted_permutation(&keys, &sim.sorted).expect("sim sorted");

        let ratio = sim.report.metrics.cycles as f64 / ours.report.metrics.cycles as f64;
        t.row(vec![
            n.to_string(),
            ours.report.metrics.cycles.to_string(),
            sim.report.metrics.cycles.to_string(),
            f2(ratio),
            f2(log2(n) * log2(n)),
        ]);
    }
    t.print("E10: direct wait-free sort vs wait-free-by-simulation bitonic network");
    println!(
        "\nPaper claim: transformation techniques cost O(log^3 N) where \
         the direct algorithm costs O(log N) — a Theta(log^2 N) gap. \
         Shape checks: the simulated network loses everywhere, and the \
         ratio grows with N roughly tracking the log2^2 N column."
    );
}
