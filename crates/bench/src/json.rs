//! A minimal JSON reader and the `BENCH_native.json` schema check.
//!
//! The experiment binaries hand-render their JSON artifacts (the
//! workspace deliberately carries no serialization dependency), so the
//! schema gate needs a reader of the same weight: enough JSON to parse
//! what the binaries emit — objects, arrays, strings with the standard
//! escapes, numbers, booleans, null — and reject trailing garbage.
//! It is a validator's parser, not a general-purpose one: numbers
//! become `f64` (fine for counters well under 2^53) and object keys
//! keep their order.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers included).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses `text` as a single JSON value (surrounding whitespace
    /// allowed, trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Member `key` of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, what: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == what {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", what as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        // Surrogate pairs are not needed for our ASCII
                        // artifacts; map unpaired surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos - 1)),
                }
            }
            _ => {
                // Multi-byte UTF-8: copy the whole sequence through.
                let len = utf8_len(b);
                let end = *pos - 1 + len;
                let s = bytes
                    .get(*pos - 1..end)
                    .and_then(|sl| std::str::from_utf8(sl).ok())
                    .ok_or("bad utf-8 in string")?;
                out.push_str(s);
                *pos = end;
            }
        }
    }
    Err("unterminated string".into())
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// The schema tag `e24_native_metrics` writes and this gate expects.
pub const NATIVE_METRICS_SCHEMA: &str = "wfsort-native-metrics/v1";

fn require_num(run: &Json, key: &str, at: usize) -> Result<f64, String> {
    run.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("runs[{at}].{key}: missing or not a number"))
}

fn require_counts(run: &Json, group: &str, keys: &[&str], at: usize) -> Result<(), String> {
    let obj = run
        .get(group)
        .ok_or_else(|| format!("runs[{at}].{group}: missing"))?;
    for key in keys {
        let v = obj
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("runs[{at}].{group}.{key}: missing or not a number"))?;
        if v < 0.0 || v.fract() != 0.0 {
            return Err(format!(
                "runs[{at}].{group}.{key}: not a non-negative integer"
            ));
        }
    }
    Ok(())
}

/// Validates a `BENCH_native.json` document against the
/// [`NATIVE_METRICS_SCHEMA`] shape: schema tag, experiment id, and a
/// non-empty `runs` array in which every run carries the sweep
/// coordinates, timing, the four per-phase counter groups (block-claim
/// counts included), a CAS-failure rate inside `[0, 1]`, and a
/// `per_worker` breakdown whose length matches the job's
/// `tracked_slots` — a report that tracked more or fewer workers than
/// it metered is corrupt. Returns the number of runs.
pub fn validate_native_metrics(text: &str) -> Result<usize, String> {
    let doc = Json::parse(text)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(NATIVE_METRICS_SCHEMA) => {}
        Some(other) => {
            return Err(format!(
                "schema: expected {NATIVE_METRICS_SCHEMA}, got {other}"
            ))
        }
        None => return Err("schema: missing".into()),
    }
    if doc.get("experiment").and_then(Json::as_str).is_none() {
        return Err("experiment: missing or not a string".into());
    }
    if doc.get("quick").and_then(Json::as_bool).is_none() {
        return Err("quick: missing or not a boolean".into());
    }
    let runs = doc
        .get("runs")
        .and_then(Json::as_array)
        .ok_or("runs: missing or not an array")?;
    if runs.is_empty() {
        return Err("runs: empty".into());
    }
    for (at, run) in runs.iter().enumerate() {
        for key in [
            "threads",
            "n",
            "elapsed_ms",
            "total_ops",
            "help_steps",
            "checkpoints",
            "tracked_slots",
        ] {
            require_num(run, key, at)?;
        }
        for key in ["shape", "allocation"] {
            if run.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("runs[{at}].{key}: missing or not a string"));
            }
        }
        if run.get("sorted").and_then(Json::as_bool) != Some(true) {
            return Err(format!("runs[{at}].sorted: missing or not true"));
        }
        require_counts(
            run,
            "build",
            &[
                "cas_attempts",
                "cas_failures",
                "descent_steps",
                "claims",
                "block_claims",
                "probes",
            ],
            at,
        )?;
        require_counts(run, "sum", &["visits", "skips"], at)?;
        require_counts(run, "place", &["visits", "skips"], at)?;
        require_counts(run, "scatter", &["claims", "block_claims", "probes"], at)?;
        let rate = require_num(run, "cas_failure_rate", at)?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!(
                "runs[{at}].cas_failure_rate: {rate} outside [0, 1]"
            ));
        }
        let tracked = require_num(run, "tracked_slots", at)?;
        let per_worker = run
            .get("per_worker")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("runs[{at}].per_worker: missing or not an array"))?;
        if per_worker.len() as f64 != tracked {
            return Err(format!(
                "runs[{at}].per_worker: {} entries but tracked_slots is {tracked}",
                per_worker.len()
            ));
        }
        for (slot, worker) in per_worker.iter().enumerate() {
            for key in ["help_steps", "checkpoints", "total_ops"] {
                if worker.get(key).and_then(Json::as_f64).is_none() {
                    return Err(format!(
                        "runs[{at}].per_worker[{slot}].{key}: missing or not a number"
                    ));
                }
            }
        }
    }
    Ok(runs.len())
}

/// The schema tag `e25_layout_bench` writes.
pub const LAYOUT_SCHEMA: &str = "wfsort-native-layout/v1";

/// Validates a `BENCH_layout.json` document against the
/// [`LAYOUT_SCHEMA`] shape:
///
/// * `throughput`: non-empty packed-vs-legacy timing sweep — every entry
///   names a shape, carries both layouts' best times, and proves both
///   runs actually sorted;
/// * `cache_lines`: the per-phase cache-lines-touched estimates for both
///   layouts (the analytical half of the story);
/// * `grain_sweep`: non-empty, each entry a single-threaded run whose
///   deterministic `build_block_claims` must equal
///   `ceil((n - 1) / grain)` — the validator recomputes it;
/// * `arena`: fresh-allocation vs arena-reuse round timings.
///
/// Returns the total number of throughput + grain-sweep entries.
pub fn validate_layout_bench(text: &str) -> Result<usize, String> {
    let doc = Json::parse(text)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(LAYOUT_SCHEMA) => {}
        Some(other) => return Err(format!("schema: expected {LAYOUT_SCHEMA}, got {other}")),
        None => return Err("schema: missing".into()),
    }
    if doc.get("experiment").and_then(Json::as_str).is_none() {
        return Err("experiment: missing or not a string".into());
    }
    if doc.get("quick").and_then(Json::as_bool).is_none() {
        return Err("quick: missing or not a boolean".into());
    }

    let throughput = doc
        .get("throughput")
        .and_then(Json::as_array)
        .ok_or("throughput: missing or not an array")?;
    if throughput.is_empty() {
        return Err("throughput: empty".into());
    }
    for (at, entry) in throughput.iter().enumerate() {
        if entry.get("shape").and_then(Json::as_str).is_none() {
            return Err(format!("throughput[{at}].shape: missing or not a string"));
        }
        for key in ["n", "threads", "packed_ms", "legacy_ms", "speedup"] {
            let v = entry
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("throughput[{at}].{key}: missing or not a number"))?;
            if v < 0.0 {
                return Err(format!("throughput[{at}].{key}: negative"));
            }
        }
        for key in ["packed_sorted", "legacy_sorted"] {
            if entry.get(key).and_then(Json::as_bool) != Some(true) {
                return Err(format!("throughput[{at}].{key}: missing or not true"));
            }
        }
    }

    let cache_lines = doc
        .get("cache_lines")
        .and_then(Json::as_array)
        .ok_or("cache_lines: missing or not an array")?;
    if cache_lines.is_empty() {
        return Err("cache_lines: empty".into());
    }
    for (at, entry) in cache_lines.iter().enumerate() {
        if entry.get("phase").and_then(Json::as_str).is_none() {
            return Err(format!("cache_lines[{at}].phase: missing or not a string"));
        }
        for key in [
            "n",
            "packed_lines_per_step",
            "legacy_lines_per_step",
            "packed_lines",
            "legacy_lines",
        ] {
            require_num(entry, key, at).map_err(|e| e.replace("runs[", "cache_lines["))?;
        }
    }

    let sweep = doc
        .get("grain_sweep")
        .and_then(Json::as_array)
        .ok_or("grain_sweep: missing or not an array")?;
    if sweep.is_empty() {
        return Err("grain_sweep: empty".into());
    }
    for (at, entry) in sweep.iter().enumerate() {
        for key in [
            "n",
            "grain",
            "build_claims",
            "build_block_claims",
            "scatter_block_claims",
        ] {
            let v = entry
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("grain_sweep[{at}].{key}: missing or not a number"))?;
            if v < 0.0 || v.fract() != 0.0 {
                return Err(format!(
                    "grain_sweep[{at}].{key}: not a non-negative integer"
                ));
            }
        }
        if entry.get("sorted").and_then(Json::as_bool) != Some(true) {
            return Err(format!("grain_sweep[{at}].sorted: missing or not true"));
        }
        // Single-threaded block claims are fully deterministic: one per
        // real leaf block. Recompute and compare.
        let n = entry.get("n").and_then(Json::as_f64).unwrap() as u64;
        let grain = entry.get("grain").and_then(Json::as_f64).unwrap() as u64;
        if grain == 0 {
            return Err(format!("grain_sweep[{at}].grain: zero"));
        }
        let expect = (n - 1).div_ceil(grain);
        let got = entry
            .get("build_block_claims")
            .and_then(Json::as_f64)
            .unwrap() as u64;
        if got != expect {
            return Err(format!(
                "grain_sweep[{at}].build_block_claims: {got}, expected ceil((n-1)/grain) = {expect}"
            ));
        }
    }

    let arena = doc
        .get("arena")
        .and_then(Json::as_array)
        .ok_or("arena: missing or not an array")?;
    if arena.is_empty() {
        return Err("arena: empty".into());
    }
    for (at, entry) in arena.iter().enumerate() {
        for key in ["n", "rounds", "fresh_ms", "arena_ms"] {
            let v = entry
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("arena[{at}].{key}: missing or not a number"))?;
            if v < 0.0 {
                return Err(format!("arena[{at}].{key}: negative"));
            }
        }
        if entry.get("sorted").and_then(Json::as_bool) != Some(true) {
            return Err(format!("arena[{at}].sorted: missing or not true"));
        }
    }

    Ok(throughput.len() + sweep.len())
}

/// The schema tag `e26_sharded_bench` writes. v4 added the required
/// `inplace` section — the ISSUE-10 partition-strategy A/B rows with
/// the auxiliary-memory cap and the memory-traffic-ledger pin.
pub const SHARDED_SCHEMA: &str = "wfsort-native-sharded/v4";

/// The previous sharded schema tag, inside its one-release migration
/// window per the versioning policy in `docs/artifacts.md`: v3-tagged
/// documents still validate, with the v4 `inplace` section treated as
/// optional. The window closes next release, after which v3 joins v2
/// and v1.
pub const SHARDED_SCHEMA_V3: &str = "wfsort-native-sharded/v3";

/// A retired sharded schema tag. Its one-release migration window (the
/// v3 release) is over: v2 documents are now rejected with a pointer
/// at the current tag, exactly as v1 was before it.
pub const SHARDED_SCHEMA_V2: &str = "wfsort-native-sharded/v2";

/// The retired sharded schema tag. The one-release migration window the
/// versioning policy in `docs/artifacts.md` promised is over: documents
/// carrying this tag are now rejected with a pointer at the current tag.
pub const SHARDED_SCHEMA_V1: &str = "wfsort-native-sharded/v1";

/// Validates a `BENCH_sharded.json` document against the
/// [`SHARDED_SCHEMA`] shape:
///
/// * `comparison`: non-empty sharded-vs-single-tree sweep — every entry
///   names a shape, carries its sweep coordinates (`n`, `threads`,
///   `shards`), both paths' best times, and proves both runs sorted
///   *and* that their permutations matched element-for-element
///   (`permutation_match` — the differential claim, self-validated);
/// * `balance`: per-configuration shard-size statistics whose
///   `sizes_sum` must equal `n` (the validator recomputes the
///   coverage) with `imbalance >= 1` (it is max/ideal);
/// * `counter_pins`: single-threaded deterministic runs — the validator
///   recomputes `partition_blocks = ceil(n / partition_grain)` and pins
///   `partition_claims = n`, `partition_block_claims = fill_claims =
///   partition_blocks`, and `shard_sort_claims = shards`;
/// * `adversarial` (required): the duplicate/skew battery — every entry
///   proves the achieved `imbalance` met the requested τ
///   (`within_requested`) and that the permutation matched the stable
///   `(key, index)` oracle (`permutation_match`), with the populated
///   `equality_buckets` count alongside;
/// * `classify` (required since v3): the kernel A/B rows — both
///   kernels' best times with `speedup = binary_ms / ladder_ms`, proof
///   the kernels agreed (`permutation_match`) and sorted, and the fused
///   Fill-entry pin: the validator recomputes `fill_setup_steps =
///   partition_blocks × buckets` (O(B·P), not O(n)) and requires the
///   lone instrumented run to have classified every block
///   (`kernel_blocks = partition_blocks`);
/// * `inplace` (required by v4): the partition-strategy A/B rows —
///   every entry pins the auxiliary-memory bound (`aux_bytes <=
///   aux_cap`, where `aux_cap = B·P·8` is recomputed from
///   `partition_blocks × buckets × 8`), the memory-traffic ledger
///   (`bytes_inplace < bytes_materialized`, strict), the move ledger
///   (`moves_inplace <= moves_materialized`), a crash-free run
///   (`cycle_restarts = 0`), and proof both strategies produced the
///   identical permutation (`permutation_match`) and sorted.
///
/// [`SHARDED_SCHEMA`] (v4) documents are fully enforced.
/// [`SHARDED_SCHEMA_V3`] is inside its one-release migration window:
/// accepted, with `inplace` optional (validated when present). The
/// legacy [`SHARDED_SCHEMA_V2`] and [`SHARDED_SCHEMA_V1`] tags had
/// their windows and are rejected with an explicit message.
///
/// Returns the number of comparison + counter-pin + adversarial +
/// classify + inplace entries.
pub fn validate_sharded_bench(text: &str) -> Result<usize, String> {
    let doc = Json::parse(text)?;
    let v4 = match doc.get("schema").and_then(Json::as_str) {
        Some(SHARDED_SCHEMA) => true,
        Some(SHARDED_SCHEMA_V3) => false,
        Some(retired @ (SHARDED_SCHEMA_V2 | SHARDED_SCHEMA_V1)) => {
            return Err(format!(
                "schema: {retired} is no longer accepted (its one-release \
                 migration window is over) — regenerate the artifact with \
                 e26_sharded_bench, which emits {SHARDED_SCHEMA}"
            ))
        }
        Some(other) => return Err(format!("schema: expected {SHARDED_SCHEMA}, got {other}")),
        None => return Err("schema: missing".into()),
    };
    if doc.get("experiment").and_then(Json::as_str).is_none() {
        return Err("experiment: missing or not a string".into());
    }
    if doc.get("quick").and_then(Json::as_bool).is_none() {
        return Err("quick: missing or not a boolean".into());
    }

    let comparison = doc
        .get("comparison")
        .and_then(Json::as_array)
        .ok_or("comparison: missing or not an array")?;
    if comparison.is_empty() {
        return Err("comparison: empty".into());
    }
    for (at, entry) in comparison.iter().enumerate() {
        if entry.get("shape").and_then(Json::as_str).is_none() {
            return Err(format!("comparison[{at}].shape: missing or not a string"));
        }
        for key in [
            "n",
            "threads",
            "shards",
            "sharded_ms",
            "single_ms",
            "speedup",
        ] {
            let v = entry
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("comparison[{at}].{key}: missing or not a number"))?;
            if v < 0.0 {
                return Err(format!("comparison[{at}].{key}: negative"));
            }
        }
        for key in ["sharded_sorted", "single_sorted", "permutation_match"] {
            if entry.get(key).and_then(Json::as_bool) != Some(true) {
                return Err(format!("comparison[{at}].{key}: missing or not true"));
            }
        }
    }

    let balance = doc
        .get("balance")
        .and_then(Json::as_array)
        .ok_or("balance: missing or not an array")?;
    if balance.is_empty() {
        return Err("balance: empty".into());
    }
    for (at, entry) in balance.iter().enumerate() {
        if entry.get("shape").and_then(Json::as_str).is_none() {
            return Err(format!("balance[{at}].shape: missing or not a string"));
        }
        for key in ["n", "shards", "max_shard", "sizes_sum"] {
            let v = entry
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("balance[{at}].{key}: missing or not a number"))?;
            if v < 0.0 || v.fract() != 0.0 {
                return Err(format!("balance[{at}].{key}: not a non-negative integer"));
            }
        }
        let n = entry.get("n").and_then(Json::as_f64).unwrap();
        let sum = entry.get("sizes_sum").and_then(Json::as_f64).unwrap();
        if sum != n {
            return Err(format!(
                "balance[{at}].sizes_sum: {sum}, but shard sizes must cover n = {n}"
            ));
        }
        let imbalance = entry
            .get("imbalance")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("balance[{at}].imbalance: missing or not a number"))?;
        if imbalance < 1.0 {
            return Err(format!(
                "balance[{at}].imbalance: {imbalance} below 1 (it is max/ideal)"
            ));
        }
    }

    let pins = doc
        .get("counter_pins")
        .and_then(Json::as_array)
        .ok_or("counter_pins: missing or not an array")?;
    if pins.is_empty() {
        return Err("counter_pins: empty".into());
    }
    for (at, entry) in pins.iter().enumerate() {
        for key in [
            "n",
            "shards",
            "partition_grain",
            "partition_blocks",
            "partition_claims",
            "partition_block_claims",
            "fill_claims",
            "shard_sort_claims",
        ] {
            let v = entry
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("counter_pins[{at}].{key}: missing or not a number"))?;
            if v < 0.0 || v.fract() != 0.0 {
                return Err(format!(
                    "counter_pins[{at}].{key}: not a non-negative integer"
                ));
            }
        }
        if entry.get("sorted").and_then(Json::as_bool) != Some(true) {
            return Err(format!("counter_pins[{at}].sorted: missing or not true"));
        }
        let get = |key: &str| entry.get(key).and_then(Json::as_f64).unwrap() as u64;
        let (n, grain) = (get("n"), get("partition_grain"));
        if grain == 0 {
            return Err(format!("counter_pins[{at}].partition_grain: zero"));
        }
        let blocks = n.div_ceil(grain);
        if get("partition_blocks") != blocks {
            return Err(format!(
                "counter_pins[{at}].partition_blocks: {}, expected ceil(n/grain) = {blocks}",
                get("partition_blocks")
            ));
        }
        for (key, expect) in [
            ("partition_claims", n),
            ("partition_block_claims", blocks),
            ("fill_claims", blocks),
            ("shard_sort_claims", get("shards")),
        ] {
            if get(key) != expect {
                return Err(format!(
                    "counter_pins[{at}].{key}: {}, expected {expect} (single-threaded \
                     deterministic runs are exact)",
                    get(key)
                ));
            }
        }
    }

    let adversarial = doc
        .get("adversarial")
        .and_then(Json::as_array)
        .ok_or("adversarial: missing or not an array")?;
    if adversarial.is_empty() {
        return Err("adversarial: empty".into());
    }
    for (at, entry) in adversarial.iter().enumerate() {
        if entry.get("shape").and_then(Json::as_str).is_none() {
            return Err(format!("adversarial[{at}].shape: missing or not a string"));
        }
        for key in ["n", "shards", "equality_buckets"] {
            let v = entry
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("adversarial[{at}].{key}: missing or not a number"))?;
            if v < 0.0 || v.fract() != 0.0 {
                return Err(format!(
                    "adversarial[{at}].{key}: not a non-negative integer"
                ));
            }
        }
        let imbalance = entry
            .get("imbalance")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("adversarial[{at}].imbalance: missing or not a number"))?;
        if imbalance < 1.0 {
            return Err(format!(
                "adversarial[{at}].imbalance: {imbalance} below 1 (it is max/ideal)"
            ));
        }
        let requested = entry
            .get("requested_imbalance")
            .and_then(Json::as_f64)
            .ok_or_else(|| {
                format!("adversarial[{at}].requested_imbalance: missing or not a number")
            })?;
        // NaN must fail this gate too, hence partial_cmp over `<=`.
        if requested.partial_cmp(&1.0) != Some(std::cmp::Ordering::Greater) {
            return Err(format!(
                "adversarial[{at}].requested_imbalance: {requested} not above 1 \
                 (the job normalizes τ before reporting)"
            ));
        }
        if imbalance > requested {
            return Err(format!(
                "adversarial[{at}]: achieved imbalance {imbalance} exceeds requested {requested}"
            ));
        }
        for key in ["within_requested", "permutation_match"] {
            if entry.get(key).and_then(Json::as_bool) != Some(true) {
                return Err(format!("adversarial[{at}].{key}: missing or not true"));
            }
        }
    }

    let classify = doc
        .get("classify")
        .and_then(Json::as_array)
        .ok_or("classify: missing or not an array (required since v3)")?;
    if classify.is_empty() {
        return Err("classify: empty".into());
    }
    for (at, entry) in classify.iter().enumerate() {
        if entry.get("shape").and_then(Json::as_str).is_none() {
            return Err(format!("classify[{at}].shape: missing or not a string"));
        }
        for key in [
            "n",
            "shards",
            "splitters",
            "buckets",
            "partition_blocks",
            "kernel_blocks",
            "classify_steps",
            "fill_setup_steps",
        ] {
            let v = entry
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("classify[{at}].{key}: missing or not a number"))?;
            if v < 0.0 || v.fract() != 0.0 {
                return Err(format!("classify[{at}].{key}: not a non-negative integer"));
            }
        }
        for key in ["binary_ms", "ladder_ms", "speedup"] {
            let v = entry
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("classify[{at}].{key}: missing or not a number"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("classify[{at}].{key}: not a non-negative number"));
            }
        }
        let get = |key: &str| entry.get(key).and_then(Json::as_f64).unwrap() as u64;
        // The fused-histogram claim, recomputed: entering Fill costs
        // exactly the B·P offset-table reduction, never an O(n) scan.
        let table = get("partition_blocks") * get("buckets");
        if get("fill_setup_steps") != table {
            return Err(format!(
                "classify[{at}].fill_setup_steps: {}, expected partition_blocks × buckets \
                 = {table} (the fused histogram makes Fill entry O(B·P))",
                get("fill_setup_steps")
            ));
        }
        if get("kernel_blocks") != get("partition_blocks") {
            return Err(format!(
                "classify[{at}].kernel_blocks: {}, expected partition_blocks = {} \
                 (a lone instrumented run classifies each block exactly once)",
                get("kernel_blocks"),
                get("partition_blocks")
            ));
        }
        for key in ["sorted", "permutation_match"] {
            if entry.get(key).and_then(Json::as_bool) != Some(true) {
                return Err(format!("classify[{at}].{key}: missing or not true"));
            }
        }
    }

    let empty = Vec::new();
    let inplace = match doc.get("inplace").and_then(Json::as_array) {
        Some(inplace) => inplace,
        // The v3 migration window: `inplace` did not exist yet.
        None if !v4 => &empty,
        None => return Err("inplace: missing or not an array (required by v4)".into()),
    };
    if v4 && inplace.is_empty() {
        return Err("inplace: empty".into());
    }
    for (at, entry) in inplace.iter().enumerate() {
        if entry.get("shape").and_then(Json::as_str).is_none() {
            return Err(format!("inplace[{at}].shape: missing or not a string"));
        }
        for key in [
            "n",
            "shards",
            "partition_blocks",
            "buckets",
            "aux_bytes",
            "aux_cap",
            "moves_inplace",
            "moves_materialized",
            "bytes_inplace",
            "bytes_materialized",
            "cycle_restarts",
        ] {
            let v = entry
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("inplace[{at}].{key}: missing or not a number"))?;
            if v < 0.0 || v.fract() != 0.0 {
                return Err(format!("inplace[{at}].{key}: not a non-negative integer"));
            }
        }
        let get = |key: &str| entry.get(key).and_then(Json::as_f64).unwrap() as u64;
        // The auxiliary-memory claim, recomputed: the in-place exchange
        // allocates only the B·P destination-offset table, never an
        // N-sized output buffer.
        let cap = get("partition_blocks") * get("buckets") * 8;
        if get("aux_cap") != cap {
            return Err(format!(
                "inplace[{at}].aux_cap: {}, expected partition_blocks × buckets × 8 = {cap}",
                get("aux_cap")
            ));
        }
        if get("aux_bytes") > cap {
            return Err(format!(
                "inplace[{at}].aux_bytes: {} exceeds the B·P·8 cap {cap} \
                 (the in-place exchange must not materialize the bucket buffer)",
                get("aux_bytes")
            ));
        }
        // The memory-traffic-ledger claim: the in-place Fill/publish
        // pipeline touches strictly fewer shared-array bytes than the
        // materialized one on every shape.
        if get("bytes_inplace") >= get("bytes_materialized") {
            return Err(format!(
                "inplace[{at}].bytes_inplace: {} not strictly below \
                 bytes_materialized = {}",
                get("bytes_inplace"),
                get("bytes_materialized")
            ));
        }
        if get("moves_inplace") > get("moves_materialized") {
            return Err(format!(
                "inplace[{at}].moves_inplace: {} exceeds moves_materialized = {}",
                get("moves_inplace"),
                get("moves_materialized")
            ));
        }
        if get("cycle_restarts") != 0 {
            return Err(format!(
                "inplace[{at}].cycle_restarts: {}, expected 0 (a crash-free run \
                 never tears a unit)",
                get("cycle_restarts")
            ));
        }
        for key in ["sorted", "permutation_match"] {
            if entry.get(key).and_then(Json::as_bool) != Some(true) {
                return Err(format!("inplace[{at}].{key}: missing or not true"));
            }
        }
    }

    Ok(comparison.len() + pins.len() + adversarial.len() + classify.len() + inplace.len())
}

/// The schema tag `e27_service_bench` writes. v2 added the `fairness`
/// section (work-conserving helper stints and weighted scheduling).
pub const SERVICE_SCHEMA: &str = "wfsort-native-service/v2";

/// Validates a `BENCH_service.json` document against the
/// [`SERVICE_SCHEMA`] shape:
///
/// * `throughput`: non-empty multi-tenant load sweep — every entry
///   carries its sweep coordinates (`workers`, `jobs`, `n`), wall time,
///   jobs-per-second, latency statistics, and proves every tenant's
///   output was bit-identical to a sequential sort (`all_identical`);
/// * `deadlines`: deadline-miss rows whose `missed + completed` must
///   equal `jobs`, with the zero-deadline row pinned to `missed ==
///   jobs` (a zero deadline on a non-trivial job always expires);
/// * `backpressure`: admission-control rows with exact accounting —
///   `admitted + rejected_queue_full == submitted` and at least one
///   rejection (the flood overruns the bounded queue by construction);
/// * `recovery`: chaos-storm rows with publication accounting —
///   `completed + workers_lost == admitted`, healthy tenants
///   bit-identical, and the victim either recovered or typed-failed;
/// * `fairness` (v2): work-conservation and weighted-scheduling rows —
///   each carries the scheduler's pick ledger (`queue_picks`,
///   `weighted_picks`, `helper_stints`, `max_stints`) with
///   `weighted_picks <= queue_picks` enforced per row, every tenant
///   bit-identical, and across the section at least one row must prove
///   helper joins (`helper_stints > 0` with multi-stint occupancy,
///   `max_stints >= 2`) and one must prove a weighted overtake
///   (`weighted_picks > 0`).
///
/// Every numeric field must be finite (no NaN/inf — degenerate service
/// telemetry is normalized upstream, and this gate enforces it).
///
/// Returns the total number of entries across the five arrays.
pub fn validate_service_bench(text: &str) -> Result<usize, String> {
    let doc = Json::parse(text)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(SERVICE_SCHEMA) => {}
        Some(other) => return Err(format!("schema: expected {SERVICE_SCHEMA}, got {other}")),
        None => return Err("schema: missing".into()),
    }
    if doc.get("experiment").and_then(Json::as_str).is_none() {
        return Err("experiment: missing or not a string".into());
    }
    if doc.get("quick").and_then(Json::as_bool).is_none() {
        return Err("quick: missing or not a boolean".into());
    }

    // Shared helper: a required numeric field that must be finite and
    // non-negative. The ISSUE-6 imbalance fix normalizes degenerate
    // telemetry to finite values; any NaN/inf landing here is a bug.
    let num = |entry: &Json, section: &str, at: usize, key: &str| -> Result<f64, String> {
        let v = entry
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{section}[{at}].{key}: missing or not a number"))?;
        if !v.is_finite() {
            return Err(format!("{section}[{at}].{key}: not finite"));
        }
        if v < 0.0 {
            return Err(format!("{section}[{at}].{key}: negative"));
        }
        Ok(v)
    };

    let throughput = doc
        .get("throughput")
        .and_then(Json::as_array)
        .ok_or("throughput: missing or not an array")?;
    if throughput.is_empty() {
        return Err("throughput: empty".into());
    }
    for (at, entry) in throughput.iter().enumerate() {
        for key in [
            "workers",
            "jobs",
            "n",
            "total_ms",
            "jobs_per_s",
            "mean_latency_ms",
            "max_latency_ms",
            "mean_queued_ms",
            "mean_imbalance",
        ] {
            num(entry, "throughput", at, key)?;
        }
        if num(entry, "throughput", at, "jobs_per_s")? <= 0.0 {
            return Err(format!("throughput[{at}].jobs_per_s: not positive"));
        }
        if entry.get("all_identical").and_then(Json::as_bool) != Some(true) {
            return Err(format!(
                "throughput[{at}].all_identical: missing or not true"
            ));
        }
    }

    let deadlines = doc
        .get("deadlines")
        .and_then(Json::as_array)
        .ok_or("deadlines: missing or not an array")?;
    if deadlines.is_empty() {
        return Err("deadlines: empty".into());
    }
    for (at, entry) in deadlines.iter().enumerate() {
        for key in ["deadline_us", "jobs", "missed", "completed"] {
            let v = num(entry, "deadlines", at, key)?;
            if v.fract() != 0.0 {
                return Err(format!("deadlines[{at}].{key}: not an integer"));
            }
        }
        let get = |key: &str| entry.get(key).and_then(Json::as_f64).unwrap() as u64;
        let (jobs, missed, completed) = (get("jobs"), get("missed"), get("completed"));
        if missed + completed != jobs {
            return Err(format!(
                "deadlines[{at}]: missed ({missed}) + completed ({completed}) != jobs ({jobs})"
            ));
        }
        if get("deadline_us") == 0 && missed != jobs {
            return Err(format!(
                "deadlines[{at}]: zero deadline must miss every job, got {missed}/{jobs}"
            ));
        }
    }

    let backpressure = doc
        .get("backpressure")
        .and_then(Json::as_array)
        .ok_or("backpressure: missing or not an array")?;
    if backpressure.is_empty() {
        return Err("backpressure: empty".into());
    }
    for (at, entry) in backpressure.iter().enumerate() {
        for key in ["capacity", "submitted", "admitted", "rejected_queue_full"] {
            let v = num(entry, "backpressure", at, key)?;
            if v.fract() != 0.0 {
                return Err(format!("backpressure[{at}].{key}: not an integer"));
            }
        }
        let get = |key: &str| entry.get(key).and_then(Json::as_f64).unwrap() as u64;
        if get("admitted") + get("rejected_queue_full") != get("submitted") {
            return Err(format!(
                "backpressure[{at}]: admitted ({}) + rejected_queue_full ({}) != submitted ({})",
                get("admitted"),
                get("rejected_queue_full"),
                get("submitted")
            ));
        }
        if get("rejected_queue_full") == 0 {
            return Err(format!(
                "backpressure[{at}].rejected_queue_full: zero — the flood must \
                 overrun the bounded queue"
            ));
        }
    }

    let recovery = doc
        .get("recovery")
        .and_then(Json::as_array)
        .ok_or("recovery: missing or not an array")?;
    if recovery.is_empty() {
        return Err("recovery: empty".into());
    }
    for (at, entry) in recovery.iter().enumerate() {
        for key in [
            "seed",
            "admitted",
            "completed",
            "workers_lost",
            "crash_recoveries",
        ] {
            let v = num(entry, "recovery", at, key)?;
            if v.fract() != 0.0 {
                return Err(format!("recovery[{at}].{key}: not an integer"));
            }
        }
        let get = |key: &str| entry.get(key).and_then(Json::as_f64).unwrap() as u64;
        if get("completed") + get("workers_lost") != get("admitted") {
            return Err(format!(
                "recovery[{at}]: completed ({}) + workers_lost ({}) != admitted ({}) — \
                 every admitted job must publish exactly once",
                get("completed"),
                get("workers_lost"),
                get("admitted")
            ));
        }
        if entry.get("healthy_identical").and_then(Json::as_bool) != Some(true) {
            return Err(format!(
                "recovery[{at}].healthy_identical: missing or not true"
            ));
        }
        if entry.get("victim_outcome").and_then(Json::as_str).is_none() {
            return Err(format!("recovery[{at}].victim_outcome: missing"));
        }
    }

    let fairness = doc
        .get("fairness")
        .and_then(Json::as_array)
        .ok_or("fairness: missing or not an array")?;
    if fairness.is_empty() {
        return Err("fairness: empty".into());
    }
    let (mut helper_proven, mut weighted_proven) = (false, false);
    for (at, entry) in fairness.iter().enumerate() {
        if entry.get("mode").and_then(Json::as_str).is_none() {
            return Err(format!("fairness[{at}].mode: missing or not a string"));
        }
        for key in [
            "workers",
            "jobs",
            "completed",
            "queue_picks",
            "weighted_picks",
            "helper_stints",
            "max_stints",
        ] {
            let v = num(entry, "fairness", at, key)?;
            if v.fract() != 0.0 {
                return Err(format!("fairness[{at}].{key}: not an integer"));
            }
        }
        let get = |key: &str| entry.get(key).and_then(Json::as_f64).unwrap() as u64;
        if get("weighted_picks") > get("queue_picks") {
            return Err(format!(
                "fairness[{at}]: weighted_picks ({}) above queue_picks ({}) — an \
                 overtake is a kind of queue pick",
                get("weighted_picks"),
                get("queue_picks")
            ));
        }
        if entry.get("all_identical").and_then(Json::as_bool) != Some(true) {
            return Err(format!("fairness[{at}].all_identical: missing or not true"));
        }
        if get("helper_stints") > 0 && get("max_stints") >= 2 {
            helper_proven = true;
        }
        if get("weighted_picks") > 0 {
            weighted_proven = true;
        }
    }
    if !helper_proven {
        return Err(
            "fairness: no row proves work conservation (helper_stints > 0 \
                    with max_stints >= 2)"
                .into(),
        );
    }
    if !weighted_proven {
        return Err("fairness: no row proves a weighted overtake (weighted_picks > 0)".into());
    }

    Ok(throughput.len() + deadlines.len() + backpressure.len() + recovery.len() + fairness.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = Json::parse(r#"{"a": [1, -2.5, "x\n", true, null], "b": {"c": 3e2}}"#).unwrap();
        let a = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_str(), Some("x\n"));
        assert_eq!(a[3].as_bool(), Some(true));
        assert_eq!(a[4], Json::Null);
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_f64(),
            Some(300.0)
        );
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse(r#"{"a": "#).is_err());
        assert!(Json::parse(r#""unterminated"#).is_err());
        assert!(Json::parse("[1,]").is_err());
    }

    #[test]
    fn unicode_escapes_and_utf8_pass_through() {
        let doc = Json::parse(r#""café — naïve""#).unwrap();
        assert_eq!(doc.as_str(), Some("café — naïve"));
    }

    fn valid_run() -> String {
        r#"{
            "threads": 2, "n": 100, "shape": "uniform-random",
            "allocation": "deterministic", "elapsed_ms": 1.5,
            "sorted": true, "total_ops": 900, "help_steps": 40,
            "checkpoints": 220, "cas_failure_rate": 0.01,
            "tracked_slots": 2,
            "per_worker": [
                {"help_steps": 25, "checkpoints": 110, "total_ops": 500},
                {"help_steps": 15, "checkpoints": 110, "total_ops": 400}
            ],
            "build": {"cas_attempts": 99, "cas_failures": 1,
                      "descent_steps": 700, "claims": 101,
                      "block_claims": 101, "probes": 130},
            "sum": {"visits": 180, "skips": 30},
            "place": {"visits": 150, "skips": 10},
            "scatter": {"claims": 100, "block_claims": 100, "probes": 120}
        }"#
        .to_string()
    }

    fn valid_doc(run: &str) -> String {
        format!(
            r#"{{"schema": "{NATIVE_METRICS_SCHEMA}", "experiment": "e24",
                "quick": true, "runs": [{run}]}}"#
        )
    }

    #[test]
    fn accepts_a_valid_document() {
        assert_eq!(validate_native_metrics(&valid_doc(&valid_run())), Ok(1));
    }

    #[test]
    fn rejects_wrong_schema_missing_fields_and_bad_rate() {
        let doc = valid_doc(&valid_run()).replace(NATIVE_METRICS_SCHEMA, "other/v0");
        assert!(validate_native_metrics(&doc)
            .unwrap_err()
            .starts_with("schema"));

        let doc = valid_doc(&valid_run().replace(r#""sorted": true"#, r#""sorted": false"#));
        assert!(validate_native_metrics(&doc)
            .unwrap_err()
            .contains("sorted"));

        let doc = valid_doc(
            &valid_run().replace(r#""cas_failure_rate": 0.01"#, r#""cas_failure_rate": 1.5"#),
        );
        assert!(validate_native_metrics(&doc)
            .unwrap_err()
            .contains("cas_failure_rate"));

        let doc =
            valid_doc(&valid_run().replace(r#""cas_failures": 1"#, r#""cas_failures": 1.25"#));
        assert!(validate_native_metrics(&doc)
            .unwrap_err()
            .contains("cas_failures"));

        let empty = format!(
            r#"{{"schema": "{NATIVE_METRICS_SCHEMA}", "experiment": "e24",
                "quick": true, "runs": []}}"#
        );
        assert_eq!(validate_native_metrics(&empty).unwrap_err(), "runs: empty");
    }

    #[test]
    fn rejects_per_worker_length_disagreeing_with_tracked_slots() {
        // One tracked slot claimed, two per-worker entries reported.
        let doc = valid_doc(&valid_run().replace(r#""tracked_slots": 2"#, r#""tracked_slots": 1"#));
        let err = validate_native_metrics(&doc).unwrap_err();
        assert!(
            err.contains("per_worker") && err.contains("tracked_slots"),
            "unexpected error: {err}"
        );

        let doc = valid_doc(&valid_run().replace(r#""per_worker": ["#, r#""per_worker_gone": ["#));
        assert!(validate_native_metrics(&doc)
            .unwrap_err()
            .contains("per_worker"));
    }

    #[test]
    fn rejects_missing_block_claims() {
        let doc = valid_doc(&valid_run().replace(r#""block_claims": 101, "#, ""));
        assert!(validate_native_metrics(&doc)
            .unwrap_err()
            .contains("block_claims"));
    }

    fn valid_layout_doc() -> String {
        format!(
            r#"{{"schema": "{LAYOUT_SCHEMA}", "experiment": "e25", "quick": true,
                "throughput": [
                    {{"shape": "uniform-random", "n": 4096, "threads": 2,
                      "packed_ms": 1.1, "legacy_ms": 1.4, "speedup": 1.27,
                      "packed_sorted": true, "legacy_sorted": true}}
                ],
                "cache_lines": [
                    {{"phase": "sum", "n": 4096,
                      "packed_lines_per_step": 1, "legacy_lines_per_step": 3,
                      "packed_lines": 4096, "legacy_lines": 12288}}
                ],
                "grain_sweep": [
                    {{"n": 4096, "grain": 1, "build_claims": 4095,
                      "build_block_claims": 4095, "scatter_block_claims": 4096,
                      "sorted": true}},
                    {{"n": 4096, "grain": 64, "build_claims": 4095,
                      "build_block_claims": 64, "scatter_block_claims": 64,
                      "sorted": true}}
                ],
                "arena": [
                    {{"n": 4096, "rounds": 8, "fresh_ms": 9.0, "arena_ms": 7.5,
                      "sorted": true}}
                ]}}"#
        )
    }

    #[test]
    fn accepts_a_valid_layout_document() {
        assert_eq!(validate_layout_bench(&valid_layout_doc()), Ok(3));
    }

    #[test]
    fn layout_validator_recomputes_block_claims_and_checks_shape() {
        let doc = valid_layout_doc()
            .replace(r#""build_block_claims": 64"#, r#""build_block_claims": 65"#);
        let err = validate_layout_bench(&doc).unwrap_err();
        assert!(
            err.contains("build_block_claims"),
            "unexpected error: {err}"
        );

        let doc =
            valid_layout_doc().replace(r#""legacy_sorted": true"#, r#""legacy_sorted": false"#);
        assert!(validate_layout_bench(&doc)
            .unwrap_err()
            .contains("legacy_sorted"));

        let doc = valid_layout_doc().replace(LAYOUT_SCHEMA, "other/v0");
        assert!(validate_layout_bench(&doc)
            .unwrap_err()
            .starts_with("schema"));

        let doc = valid_layout_doc().replace(r#""throughput": ["#, r#""throughput": [], "x": ["#);
        assert_eq!(
            validate_layout_bench(&doc).unwrap_err(),
            "throughput: empty"
        );
    }

    fn valid_sharded_doc() -> String {
        format!(
            r#"{{"schema": "{SHARDED_SCHEMA}", "experiment": "e26", "quick": true,
                "comparison": [
                    {{"shape": "uniform-random", "n": 20000, "threads": 2,
                      "shards": 8, "sharded_ms": 2.0, "single_ms": 2.6,
                      "speedup": 1.3, "sharded_sorted": true,
                      "single_sorted": true, "permutation_match": true}}
                ],
                "balance": [
                    {{"shape": "uniform-random", "n": 20000, "shards": 8,
                      "max_shard": 2900, "sizes_sum": 20000,
                      "imbalance": 1.16}}
                ],
                "counter_pins": [
                    {{"n": 4096, "shards": 8, "partition_grain": 512,
                      "partition_blocks": 8, "partition_claims": 4096,
                      "partition_block_claims": 8, "fill_claims": 8,
                      "shard_sort_claims": 8, "sorted": true}}
                ],
                "adversarial": [
                    {{"shape": "all-equal", "n": 20000, "shards": 8,
                      "equality_buckets": 1, "imbalance": 1.14,
                      "requested_imbalance": 2.0, "within_requested": true,
                      "permutation_match": true}}
                ],
                "classify": [
                    {{"shape": "uniform-random", "n": 20000, "shards": 8,
                      "splitters": 7, "buckets": 15, "partition_blocks": 8,
                      "binary_ms": 2.4, "ladder_ms": 2.0, "speedup": 1.2,
                      "kernel_blocks": 8, "classify_steps": 100000,
                      "fill_setup_steps": 120, "sorted": true,
                      "permutation_match": true}}
                ],
                "inplace": [
                    {{"shape": "uniform-random", "n": 20000, "shards": 8,
                      "partition_blocks": 8, "buckets": 15,
                      "aux_bytes": 960, "aux_cap": 960,
                      "moves_inplace": 39000, "moves_materialized": 40000,
                      "bytes_inplace": 500000, "bytes_materialized": 640000,
                      "cycle_restarts": 0, "sorted": true,
                      "permutation_match": true}}
                ]}}"#
        )
    }

    #[test]
    fn accepts_a_valid_sharded_document() {
        assert_eq!(validate_sharded_bench(&valid_sharded_doc()), Ok(5));
    }

    #[test]
    fn retired_sharded_schema_tags_are_rejected_with_a_pointer() {
        // Both v1 and v2 had their one-release migration windows: a
        // document carrying either tag is rejected even if its body
        // would otherwise validate, and the message says what to do.
        for retired in [SHARDED_SCHEMA_V1, SHARDED_SCHEMA_V2] {
            let doc = valid_sharded_doc().replace(SHARDED_SCHEMA, retired);
            let err = validate_sharded_bench(&doc).unwrap_err();
            assert!(err.contains(retired), "unexpected error: {err}");
            assert!(
                err.contains("no longer accepted"),
                "unexpected error: {err}"
            );
            assert!(err.contains(SHARDED_SCHEMA), "unexpected error: {err}");
        }

        // And the adversarial section stays mandatory at the current tag.
        let missing =
            valid_sharded_doc().replace(r#""adversarial": ["#, r#""adversarial_renamed": ["#);
        assert!(validate_sharded_bench(&missing)
            .unwrap_err()
            .contains("adversarial"));
    }

    #[test]
    fn v3_sharded_documents_validate_without_inplace_during_the_window() {
        // The ISSUE-10 migration window: a v3 tag is still accepted, and
        // since v3 predates the `inplace` section its absence is fine…
        let v3 = valid_sharded_doc()
            .replace(SHARDED_SCHEMA, SHARDED_SCHEMA_V3)
            .replace(r#""inplace": ["#, r#""inplace_renamed": ["#);
        assert_eq!(validate_sharded_bench(&v3), Ok(4));

        // …but a v3 document that does carry one gets it validated.
        let v3_bad = valid_sharded_doc()
            .replace(SHARDED_SCHEMA, SHARDED_SCHEMA_V3)
            .replace(r#""aux_bytes": 960"#, r#""aux_bytes": 161280"#);
        assert!(validate_sharded_bench(&v3_bad)
            .unwrap_err()
            .contains("aux_bytes"));

        // `classify` stays mandatory inside the window — v3 required it.
        let v3_no_classify = valid_sharded_doc()
            .replace(SHARDED_SCHEMA, SHARDED_SCHEMA_V3)
            .replace(r#""classify": ["#, r#""classify_renamed": ["#);
        assert!(validate_sharded_bench(&v3_no_classify)
            .unwrap_err()
            .contains("classify"));

        // The current tag has no such grace: v4 requires the section.
        let v4_missing = valid_sharded_doc().replace(r#""inplace": ["#, r#""inplace_renamed": ["#);
        assert!(validate_sharded_bench(&v4_missing)
            .unwrap_err()
            .contains("inplace"));
    }

    #[test]
    fn sharded_validator_enforces_inplace_ledger_pins() {
        // Auxiliary memory above the B·P·8 cap means the "in-place"
        // exchange quietly materialized a buffer — a hard failure.
        let doc = valid_sharded_doc().replace(r#""aux_bytes": 960"#, r#""aux_bytes": 961"#);
        let err = validate_sharded_bench(&doc).unwrap_err();
        assert!(err.contains("B·P·8 cap"), "unexpected error: {err}");

        // The cap itself is recomputed from blocks × buckets × 8.
        let doc = valid_sharded_doc().replace(r#""aux_cap": 960"#, r#""aux_cap": 1024"#);
        assert!(validate_sharded_bench(&doc)
            .unwrap_err()
            .contains("aux_cap"));

        // The traffic ledger is a strict inequality: equal bytes means
        // the in-place path saved nothing.
        let doc =
            valid_sharded_doc().replace(r#""bytes_inplace": 500000"#, r#""bytes_inplace": 640000"#);
        assert!(validate_sharded_bench(&doc)
            .unwrap_err()
            .contains("bytes_inplace"));

        let doc =
            valid_sharded_doc().replace(r#""moves_inplace": 39000"#, r#""moves_inplace": 40001"#);
        assert!(validate_sharded_bench(&doc)
            .unwrap_err()
            .contains("moves_inplace"));

        let doc = valid_sharded_doc().replace(r#""cycle_restarts": 0"#, r#""cycle_restarts": 2"#);
        assert!(validate_sharded_bench(&doc)
            .unwrap_err()
            .contains("cycle_restarts"));

        let doc = valid_sharded_doc().replace(
            r#""cycle_restarts": 0, "sorted": true,
                      "permutation_match": true"#,
            r#""cycle_restarts": 0, "sorted": true,
                      "permutation_match": false"#,
        );
        assert!(validate_sharded_bench(&doc)
            .unwrap_err()
            .contains("inplace[0].permutation_match"));
    }

    #[test]
    fn sharded_validator_enforces_classify_pins() {
        // A `fill_setup_steps` that smells like O(n) — anything other
        // than exactly B·P — is a hard failure: it means the fused
        // histogram regressed back to the per-participant scan.
        let doc = valid_sharded_doc()
            .replace(r#""fill_setup_steps": 120"#, r#""fill_setup_steps": 20000"#);
        let err = validate_sharded_bench(&doc).unwrap_err();
        assert!(err.contains("O(B·P)"), "unexpected error: {err}");

        let doc = valid_sharded_doc().replace(r#""kernel_blocks": 8"#, r#""kernel_blocks": 9"#);
        assert!(validate_sharded_bench(&doc)
            .unwrap_err()
            .contains("kernel_blocks"));

        let doc = valid_sharded_doc().replace(r#""ladder_ms": 2.0"#, r#""ladder_ms": -2.0"#);
        assert!(validate_sharded_bench(&doc)
            .unwrap_err()
            .contains("ladder_ms"));

        let doc = valid_sharded_doc().replace(
            r#""fill_setup_steps": 120, "sorted": true,
                      "permutation_match": true"#,
            r#""fill_setup_steps": 120, "sorted": true,
                      "permutation_match": false"#,
        );
        assert!(validate_sharded_bench(&doc)
            .unwrap_err()
            .contains("classify[0].permutation_match"));
    }

    #[test]
    fn sharded_validator_enforces_adversarial_bounds() {
        // Achieved imbalance above the requested τ is a hard failure
        // even if the flags claim success.
        let doc = valid_sharded_doc().replace(r#""imbalance": 1.14"#, r#""imbalance": 2.5"#);
        assert!(validate_sharded_bench(&doc)
            .unwrap_err()
            .contains("exceeds requested"));

        // The job normalizes τ to > 1 before reporting; a document
        // claiming τ = 1.0 was hand-edited.
        let doc = valid_sharded_doc().replace(
            r#""requested_imbalance": 2.0"#,
            r#""requested_imbalance": 1.0"#,
        );
        assert!(validate_sharded_bench(&doc)
            .unwrap_err()
            .contains("requested_imbalance"));

        let doc = valid_sharded_doc().replace(
            r#""within_requested": true"#,
            r#""within_requested": false"#,
        );
        assert!(validate_sharded_bench(&doc)
            .unwrap_err()
            .contains("within_requested"));
    }

    #[test]
    fn sharded_validator_recomputes_pins_and_coverage() {
        let doc = valid_sharded_doc()
            .replace(r#""partition_claims": 4096"#, r#""partition_claims": 4097"#);
        assert!(validate_sharded_bench(&doc)
            .unwrap_err()
            .contains("partition_claims"));

        let doc = valid_sharded_doc().replace(r#""fill_claims": 8"#, r#""fill_claims": 9"#);
        assert!(validate_sharded_bench(&doc)
            .unwrap_err()
            .contains("fill_claims"));

        let doc =
            valid_sharded_doc().replace(r#""partition_blocks": 8"#, r#""partition_blocks": 7"#);
        assert!(validate_sharded_bench(&doc)
            .unwrap_err()
            .contains("partition_blocks"));

        let doc = valid_sharded_doc().replace(r#""sizes_sum": 20000"#, r#""sizes_sum": 19999"#);
        assert!(validate_sharded_bench(&doc)
            .unwrap_err()
            .contains("sizes_sum"));

        let doc = valid_sharded_doc().replace(r#""imbalance": 1.16"#, r#""imbalance": 0.9"#);
        assert!(validate_sharded_bench(&doc)
            .unwrap_err()
            .contains("imbalance"));

        let doc = valid_sharded_doc().replace(
            r#""permutation_match": true"#,
            r#""permutation_match": false"#,
        );
        assert!(validate_sharded_bench(&doc)
            .unwrap_err()
            .contains("permutation_match"));

        let doc = valid_sharded_doc().replace(SHARDED_SCHEMA, "other/v0");
        assert!(validate_sharded_bench(&doc)
            .unwrap_err()
            .starts_with("schema"));
    }

    fn valid_service_doc() -> String {
        format!(
            r#"{{"schema": "{SERVICE_SCHEMA}", "experiment": "e27", "quick": true,
                "throughput": [
                    {{"workers": 2, "jobs": 16, "n": 5000, "total_ms": 40.0,
                      "jobs_per_s": 400.0, "mean_latency_ms": 5.0,
                      "max_latency_ms": 12.0, "mean_queued_ms": 1.5,
                      "mean_imbalance": 1.0, "all_identical": true}}
                ],
                "deadlines": [
                    {{"deadline_us": 0, "jobs": 8, "missed": 8, "completed": 0}},
                    {{"deadline_us": 5000000, "jobs": 8, "missed": 0, "completed": 8}}
                ],
                "backpressure": [
                    {{"capacity": 2, "submitted": 64, "admitted": 9,
                      "rejected_queue_full": 55}}
                ],
                "recovery": [
                    {{"seed": 3, "admitted": 5, "completed": 5, "workers_lost": 0,
                      "crash_recoveries": 1, "healthy_identical": true,
                      "victim_outcome": "recovered"}}
                ],
                "fairness": [
                    {{"mode": "helper-join", "workers": 4, "jobs": 1,
                      "completed": 1, "queue_picks": 1, "weighted_picks": 0,
                      "helper_stints": 3, "max_stints": 4,
                      "all_identical": true}},
                    {{"mode": "weighted", "workers": 1, "jobs": 9,
                      "completed": 9, "queue_picks": 9, "weighted_picks": 4,
                      "helper_stints": 0, "max_stints": 1,
                      "all_identical": true}}
                ]}}"#
        )
    }

    #[test]
    fn accepts_a_valid_service_document() {
        assert_eq!(validate_service_bench(&valid_service_doc()), Ok(7));
    }

    #[test]
    fn service_validator_enforces_accounting_and_finiteness() {
        // Non-finite numerics are rejected outright (the ISSUE-6
        // imbalance fix guarantees the producer never emits them).
        let doc =
            valid_service_doc().replace(r#""mean_imbalance": 1.0"#, r#""mean_imbalance": 1e999"#);
        assert!(validate_service_bench(&doc)
            .unwrap_err()
            .contains("not finite"));

        let doc = valid_service_doc().replace(r#""missed": 8"#, r#""missed": 7"#);
        assert!(validate_service_bench(&doc).unwrap_err().contains("missed"));

        let doc = valid_service_doc().replace(r#""admitted": 9"#, r#""admitted": 8"#);
        assert!(validate_service_bench(&doc)
            .unwrap_err()
            .contains("rejected_queue_full"));

        let doc = valid_service_doc().replace(r#""workers_lost": 0"#, r#""workers_lost": 1"#);
        assert!(validate_service_bench(&doc)
            .unwrap_err()
            .contains("publish exactly once"));

        let doc = valid_service_doc().replace(
            r#""healthy_identical": true"#,
            r#""healthy_identical": false"#,
        );
        assert!(validate_service_bench(&doc)
            .unwrap_err()
            .contains("healthy_identical"));

        let doc = valid_service_doc().replace(SERVICE_SCHEMA, "other/v0");
        assert!(validate_service_bench(&doc)
            .unwrap_err()
            .starts_with("schema"));

        // The v1 service tag is simply an unknown schema now.
        let doc = valid_service_doc().replace(SERVICE_SCHEMA, "wfsort-native-service/v1");
        assert!(validate_service_bench(&doc)
            .unwrap_err()
            .starts_with("schema"));
    }

    #[test]
    fn service_validator_enforces_the_fairness_section() {
        // The pick ledger must balance: an overtake is a kind of queue
        // pick, so weighted_picks can never exceed queue_picks.
        let doc = valid_service_doc().replace(r#""weighted_picks": 4"#, r#""weighted_picks": 40"#);
        assert!(validate_service_bench(&doc)
            .unwrap_err()
            .contains("weighted_picks"));

        // Work conservation must be proven by at least one row: helper
        // stints with multi-stint occupancy.
        let doc = valid_service_doc().replace(r#""helper_stints": 3"#, r#""helper_stints": 0"#);
        assert!(validate_service_bench(&doc)
            .unwrap_err()
            .contains("work conservation"));

        // And so must a weighted overtake.
        let doc = valid_service_doc().replace(r#""weighted_picks": 4"#, r#""weighted_picks": 0"#);
        assert!(validate_service_bench(&doc)
            .unwrap_err()
            .contains("weighted overtake"));

        // A v2 document without the section at all is rejected.
        let doc = valid_service_doc().replace(r#""fairness": ["#, r#""fairness_renamed": ["#);
        assert_eq!(
            validate_service_bench(&doc).unwrap_err(),
            "fairness: missing or not an array"
        );
    }
}
