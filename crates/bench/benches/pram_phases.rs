//! Criterion bench: host-side cost of the simulated PRAM runs used by
//! the experiments — how expensive regenerating each table is, and how
//! the three sorter variants compare on simulator throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use baselines::SimulatedNetworkSorter;
use wfsort::low_contention::LowContentionSorter;
use wfsort::{Allocation, PramSorter, SortConfig, Workload};

fn bench_pram_sorts(c: &mut Criterion) {
    let mut group = c.benchmark_group("pram_sort");
    group.sample_size(10);
    for &n in &[64usize, 256] {
        let keys = Workload::RandomPermutation.generate(n, 3);
        group.bench_with_input(BenchmarkId::new("deterministic_p_eq_n", n), &n, |b, &n| {
            let sorter = PramSorter::new(SortConfig::new(n).seed(3));
            b.iter(|| sorter.sort(&keys).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("randomized_alloc_p_eq_n", n),
            &n,
            |b, &n| {
                let sorter = PramSorter::new(
                    SortConfig::new(n)
                        .seed(3)
                        .allocation(Allocation::Randomized),
                );
                b.iter(|| sorter.sort(&keys).unwrap())
            },
        );
        group.bench_with_input(BenchmarkId::new("low_contention", n), &n, |b, _| {
            let sorter = LowContentionSorter::default();
            b.iter(|| sorter.sort(&keys).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("simulated_network", n), &n, |b, &n| {
            let sorter = SimulatedNetworkSorter::new(n);
            b.iter(|| sorter.sort(&keys).unwrap())
        });
    }
    group.finish();
}

fn bench_phase_mix(c: &mut Criterion) {
    // Same sort, different processor counts: how simulator cost scales
    // with the degree of simulated parallelism.
    let n = 512;
    let keys = Workload::RandomPermutation.generate(n, 5);
    let mut group = c.benchmark_group("pram_processor_scaling");
    group.sample_size(10);
    for &p in &[1usize, 8, 64, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            let sorter = PramSorter::new(SortConfig::new(p).seed(5));
            b.iter(|| sorter.sort(&keys).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pram_sorts, bench_phase_mix);
criterion_main!(benches);
