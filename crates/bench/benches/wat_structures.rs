//! Criterion bench: the work-assignment building blocks — native
//! `AtomicWat` throughput, and simulator cost of WAT vs LC-WAT write-all
//! and winner selection.

use std::sync::atomic::{AtomicUsize, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pram::{Machine, MemoryLayout, SyncScheduler, Word};
use wat::{LcWat, Wat, WinnerTree, WriteAllWorker};
use wfsort_native::AtomicWat;

fn bench_atomic_wat(c: &mut Criterion) {
    let jobs = 100_000;
    let mut group = c.benchmark_group("atomic_wat");
    group.sample_size(10);
    group.throughput(Throughput::Elements(jobs as u64));
    for &threads in &[1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("participate", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let wat = AtomicWat::new(jobs);
                    let done = AtomicUsize::new(0);
                    crossbeam::thread::scope(|s| {
                        for tid in 0..t {
                            let wat = &wat;
                            let done = &done;
                            s.spawn(move |_| {
                                wat.participate(
                                    tid,
                                    t,
                                    |_j| {
                                        done.fetch_add(1, Ordering::Relaxed);
                                    },
                                    || true,
                                );
                            });
                        }
                    })
                    .unwrap();
                    assert!(wat.all_done());
                    done.load(Ordering::Relaxed)
                })
            },
        );
    }
    group.finish();
}

fn bench_simulated_write_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_write_all");
    group.sample_size(10);
    let p = 256;
    group.bench_function("wat", |b| {
        b.iter(|| {
            let mut layout = MemoryLayout::new();
            let out = layout.region(p);
            let wat = Wat::layout(&mut layout, p);
            let mut machine = Machine::with_seed(layout.total(), 1);
            for proc in wat.processes(p, |_| WriteAllWorker::new(out, 1)) {
                machine.add_process(proc);
            }
            machine
                .run(&mut SyncScheduler, 10_000_000)
                .unwrap()
                .metrics
                .cycles
        })
    });
    group.bench_function("lc_wat", |b| {
        b.iter(|| {
            let mut layout = MemoryLayout::new();
            let out = layout.region(p);
            let wat = LcWat::layout(&mut layout, p);
            let mut machine = Machine::with_seed(layout.total(), 1);
            for proc in wat.processes(p, 1, |_| WriteAllWorker::new(out, 1)) {
                machine.add_process(proc);
            }
            machine
                .run(&mut SyncScheduler, 10_000_000)
                .unwrap()
                .metrics
                .cycles
        })
    });
    group.bench_function("winner_selection", |b| {
        b.iter(|| {
            let mut layout = MemoryLayout::new();
            let wt = WinnerTree::layout(&mut layout, p);
            let mut machine = Machine::with_seed(layout.total(), 1);
            for proc in wt.processes(1, 2, |pid| pid.index() as Word + 1) {
                machine.add_process(proc);
            }
            machine
                .run(&mut SyncScheduler, 10_000_000)
                .unwrap()
                .metrics
                .cycles
        })
    });
    group.finish();
}

criterion_group!(benches, bench_atomic_wat, bench_simulated_write_all);
criterion_main!(benches);
