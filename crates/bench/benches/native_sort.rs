//! Criterion bench: native wall-clock throughput of the wait-free sort
//! against sequential and parallel baselines (backs experiment E11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use baselines::{quicksort, BitonicNetwork, LockedParallelSorter};
use wfsort_native::WaitFreeSorter;

fn keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

fn bench_native(c: &mut Criterion) {
    let n = 1 << 17; // power of two so the bitonic network participates
    let input = keys(n, 1);

    let mut group = c.benchmark_group("native_sort");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function("std_sort_unstable", |b| {
        b.iter(|| {
            let mut v = input.clone();
            v.sort_unstable();
            v
        })
    });
    group.bench_function("seq_quicksort", |b| {
        b.iter(|| {
            let mut v = input.clone();
            quicksort(&mut v);
            v
        })
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("wait_free", threads), &threads, |b, &t| {
            let sorter = WaitFreeSorter::new(t);
            b.iter(|| sorter.sort(&input))
        });
    }
    {
        let threads = 4usize;
        group.bench_with_input(
            BenchmarkId::new("wait_free_with_casualties", threads),
            &threads,
            |b, &t| {
                let sorter = WaitFreeSorter::new(t);
                b.iter(|| sorter.sort_with_casualties(&input, 5_000))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("locked_quicksort", threads),
            &threads,
            |b, &t| {
                let sorter = LockedParallelSorter::new(t);
                b.iter(|| sorter.sort(&input))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bitonic_parallel", threads),
            &threads,
            |b, &t| {
                let net = BitonicNetwork::new(n);
                b.iter(|| {
                    let mut v = input.clone();
                    net.sort_parallel(&mut v, t);
                    v
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_native);
criterion_main!(benches);
