//! Criterion bench: per-key binary-search classification vs the padded
//! splitter ladder, in both its per-key and 8-lane interleaved forms
//! (backs experiment E29). Both kernels compile branchless; the
//! ladder's edge is the fixed trip count that lets lanes descend in
//! lockstep and overlap the rung-load latency chains.
//!
//! The `e26_sharded_bench` binary's E26e section produces the
//! schema-gated kernel A/B inside `BENCH_sharded.json`; this bench is
//! the statistically honest companion for local investigation
//! (`cargo bench -p bench --bench classify`), isolating the per-key
//! classification cost from the rest of the sharded pipeline across
//! splitter-count × input-shape combinations.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use wait_free_sort::testshapes;
use wfsort_native::{piece_by_search, SplitterLadder};

/// `d` strictly-increasing splitters spread across the `u64` domain the
/// test shapes draw from — the same construction the sharded sampler
/// produces after its sort + dedup + quantile thinning.
fn splitters(d: usize) -> Vec<u64> {
    let stride = u64::MAX / (d as u64 + 1);
    (1..=d as u64).map(|i| i.wrapping_mul(stride)).collect()
}

/// The swept inputs: uniform random keys (every rung matters),
/// few-distinct keys (equality buckets dominate — the ladder's folded
/// equality probe is on the hot path), and a periodic sawtooth (the
/// most predictable access pattern, so the baseline search shows its
/// best side and the A/B stays honest).
fn shapes(n: usize) -> Vec<(&'static str, Vec<u64>)> {
    vec![
        ("uniform", testshapes::uniform(n, 29)),
        ("few-distinct", testshapes::few_distinct(n, 64, 29)),
        ("sawtooth", testshapes::sawtooth(n, 1009)),
    ]
}

fn bench_classify(c: &mut Criterion) {
    let n = 1 << 14;

    let mut group = c.benchmark_group("classify");
    group.sample_size(20);
    group.throughput(Throughput::Elements(n as u64));

    // The ISSUE-9 sweep: small (fits one cache line of rungs), medium,
    // and large (past the binary search's well-predicted first probes)
    // splitter sets, over each shape. The summed piece ids defeat dead
    // code elimination and double as a cheap agreement check.
    for d in [7usize, 63, 127] {
        let splitters = splitters(d);
        let ladder = SplitterLadder::new(&splitters);
        for (shape, keys) in shapes(n) {
            let id = format!("{shape}/d={d}");
            group.bench_with_input(BenchmarkId::new("binary", &id), &keys, |b, keys| {
                b.iter(|| {
                    let mut sum = 0usize;
                    for key in keys {
                        sum += piece_by_search(black_box(&splitters), black_box(key));
                    }
                    sum
                })
            });
            group.bench_with_input(BenchmarkId::new("ladder", &id), &keys, |b, keys| {
                b.iter(|| {
                    let mut sum = 0usize;
                    for key in keys {
                        sum += ladder.piece_for(black_box(key));
                    }
                    sum
                })
            });
            // The shipped block-kernel shape: 8 keys per interleaved
            // walk, overlapping the rung-load chains (the per-key rows
            // above are latency-bound by construction).
            group.bench_with_input(BenchmarkId::new("ladder-lanes8", &id), &keys, |b, keys| {
                b.iter(|| {
                    let mut sum = 0usize;
                    let chunks = keys.chunks_exact(8);
                    let tail = chunks.remainder();
                    for chunk in chunks {
                        let lanes: [&u64; 8] = std::array::from_fn(|j| &chunk[j]);
                        for piece in ladder.piece_for_lanes(black_box(lanes)) {
                            sum += piece;
                        }
                    }
                    for key in tail {
                        sum += ladder.piece_for(black_box(key));
                    }
                    sum
                })
            });

            // Sanity outside the timed body: the kernels agree on every
            // swept key, so the A/B compares equal work.
            for key in &keys {
                assert_eq!(ladder.piece_for(key), piece_by_search(&splitters, key));
            }
        }
    }

    group.finish();
}

criterion_group!(benches, bench_classify);
criterion_main!(benches);
