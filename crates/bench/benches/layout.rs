//! Criterion bench: packed vs legacy pivot-tree layout, grain sweep,
//! and arena reuse on the native hot path (backs experiment E25).
//!
//! The `e25_layout_bench` binary produces the schema-gated
//! `BENCH_layout.json` artifact; this bench is the statistically honest
//! companion for local investigation (`cargo bench -p bench --bench
//! layout`), where criterion's sampling beats the binary's min-of-R.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wfsort_native::{
    recommended_grain, LegacySharedTree, NativeAllocation, SortArena, SortJob, WaitFreeSorter,
};

fn keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

fn bench_layout(c: &mut Criterion) {
    let n = 1 << 15;
    let input = keys(n, 25);

    let mut group = c.benchmark_group("layout");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));

    // Packed vs legacy at matching grain: job construction is inside the
    // timed body for both, so the comparison stays apples-to-apples.
    for threads in [1usize, 2, 4] {
        let grain = recommended_grain(n, threads);
        group.bench_with_input(BenchmarkId::new("packed", threads), &threads, |b, &t| {
            let sorter = WaitFreeSorter::new(t);
            b.iter(|| {
                let job =
                    SortJob::with_grain(input.clone(), NativeAllocation::Deterministic, t, grain);
                sorter.run_job(&job);
                job.into_sorted()
            })
        });
        group.bench_with_input(BenchmarkId::new("legacy", threads), &threads, |b, &t| {
            let sorter = WaitFreeSorter::new(t);
            b.iter(|| {
                let job = SortJob::<u64, LegacySharedTree>::with_layout(
                    input.clone(),
                    NativeAllocation::Deterministic,
                    t,
                    grain,
                );
                sorter.run_job(&job);
                job.into_sorted()
            })
        });
    }

    // Grain sweep at a fixed thread count: how much of the WAT claim
    // amortization shows up as wall time.
    for grain in [1usize, 2, 7, 64] {
        group.bench_with_input(BenchmarkId::new("grain", grain), &grain, |b, &g| {
            let sorter = WaitFreeSorter::new(2);
            b.iter(|| {
                let job = SortJob::with_grain(input.clone(), NativeAllocation::Deterministic, 2, g);
                sorter.run_job(&job);
                job.into_sorted()
            })
        });
    }

    // Fresh allocations per sort vs one recycled arena.
    group.bench_function("fresh_per_sort", |b| {
        let sorter = WaitFreeSorter::new(2);
        b.iter(|| sorter.sort(&input))
    });
    group.bench_function("arena_reuse", |b| {
        let sorter = WaitFreeSorter::new(2);
        let mut arena = SortArena::new();
        let mut out = Vec::new();
        b.iter(|| {
            sorter.sort_into(&input, &mut arena, &mut out);
            out.len()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_layout);
criterion_main!(benches);
