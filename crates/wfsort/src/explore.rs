//! Schedule-exploration targets for the sort phases.
//!
//! This module adapts the sort to `pram`'s bounded-preemption
//! [`Explorer`](pram::Explorer): a [`PhaseTarget`] wraps one phase (or the
//! whole sort) as a deterministic [`ExploreTarget`] whose verdicts encode
//! the paper's safety claims — a valid pivot tree (Lemma 2.5, including
//! the write-once child-pointer discipline, watched per cycle), consistent
//! subtree sizes (Figure 5), places that are exactly the sorted ranks
//! (Figure 6), and a sorted permutation of the input end-to-end. Crash
//! plans compose in via [`PhaseTarget::with_failures`], so the explorer
//! can hunt for schedules on which a crash becomes fatal.
//!
//! [`Phase::PlaceFaithful`] targets the Figure 6 routine *exactly as
//! printed* ([`FindPlaceProcess::faithful_figure6`]) — a known-unsafe
//! mutation that the explorer must be able to break; E23 uses it as the
//! engine's acceptance test.

use pram::explore::{ExploreTarget, NoWatcher, Watcher};
use pram::failure::FailurePlan;
use pram::{Machine, MemoryLayout, Pid, Region, Word};
use wat::{Wat, WatProcess};

use crate::build::{key_less, BuildTreeWorker};
use crate::layout::{ElementArrays, Side, SortLayout, EMPTY};
use crate::place::FindPlaceProcess;
use crate::sort::{PramSorter, SortConfig};
use crate::sum::TreeSumProcess;
use crate::verify::{check_sorted_permutation, validate_pivot_tree};

/// Builds the pivot tree for `keys` locally (the same deterministic
/// insertion rule phase 1 converges to) and returns the
/// `(small, big, parent)` child vectors, 1-based with entry 0 unused.
fn local_tree(keys: &[Word]) -> (Vec<Word>, Vec<Word>, Vec<Word>) {
    let n = keys.len();
    let mut small = vec![0i64; n + 1];
    let mut big = vec![0i64; n + 1];
    let mut parent = vec![0i64; n + 1];
    for i in 2..=n {
        let mut p = 1usize;
        loop {
            let slot = if key_less(keys[i - 1], i, keys[p - 1], p) {
                &mut small
            } else {
                &mut big
            };
            if slot[p] == 0 {
                slot[p] = i as i64;
                parent[i] = p as i64;
                break;
            }
            p = slot[p] as usize;
        }
    }
    (small, big, parent)
}

/// Subtree sizes of the tree rooted at element 1, computed locally in
/// postorder (`size[0]` unused and zero).
fn local_sizes(n: usize, small: &[Word], big: &[Word]) -> Vec<Word> {
    let mut size = vec![0i64; n + 1];
    let mut stack = vec![(1usize, false)];
    while let Some((node, ready)) = stack.pop() {
        if ready {
            let s = |c: Word| if c == 0 { 0 } else { size[c as usize] };
            size[node] = s(small[node]) + s(big[node]) + 1;
        } else {
            stack.push((node, true));
            for &c in [small[node], big[node]].iter().filter(|&&c| c != 0) {
                stack.push((c as usize, false));
            }
        }
    }
    size
}

/// Builds a machine whose memory holds `keys` and their fully built pivot
/// tree (children and parents) — the starting state of phase 2. Returns
/// the machine (no processes added yet) and the element arrays.
pub fn machine_with_tree(keys: &[Word], seed: u64) -> (Machine, ElementArrays) {
    let n = keys.len();
    let mut layout = MemoryLayout::new();
    let arrays = ElementArrays::layout(&mut layout, n);
    let mut machine = Machine::with_seed(layout.total(), seed);
    arrays.load_keys(machine.memory_mut(), keys);
    let (small, big, parent) = local_tree(keys);
    machine
        .memory_mut()
        .load(arrays.child(1, Side::Small) - 1, &small);
    machine
        .memory_mut()
        .load(arrays.child(1, Side::Big) - 1, &big);
    machine.memory_mut().load(arrays.parent(1) - 1, &parent);
    (machine, arrays)
}

/// Like [`machine_with_tree`], additionally preloading every subtree size
/// — the starting state of phase 3.
pub fn machine_with_sized_tree(keys: &[Word], seed: u64) -> (Machine, ElementArrays) {
    let (mut machine, arrays) = machine_with_tree(keys, seed);
    let (small, big, _) = local_tree(keys);
    let sizes = local_sizes(keys.len(), &small, &big);
    machine.memory_mut().load(arrays.size(1) - 1, &sizes);
    (machine, arrays)
}

/// Which slice of the sort a [`PhaseTarget`] explores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Phase 1 alone: insert every element into the pivot tree through
    /// the build WAT. Verdict: [`validate_pivot_tree`]; a per-cycle
    /// watcher enforces the write-once child-pointer discipline.
    Build,
    /// Phase 2 alone, over a preloaded tree. Verdict: every `size` cell
    /// satisfies `size = size(small) + size(big) + 1` and the root's is
    /// `n`.
    Sum,
    /// Phase 3 (the crash-safe postorder variant), over a preloaded sized
    /// tree. Verdict: every element's `place` is its sorted rank and its
    /// `place_done` flag is set.
    Place,
    /// Phase 3 **exactly as printed** in Figure 6 — the crash-unsafe skip
    /// on `place > 0`, no postorder flag. Correct without failures; with
    /// a crash composed in, the explorer should find losing schedules.
    PlaceFaithful,
    /// All four phases end-to-end (via [`PramSorter::prepare`]). Verdict:
    /// the output is a sorted permutation of the input; the write-once
    /// watcher runs too.
    EndToEnd,
}

impl Phase {
    fn name(&self) -> &'static str {
        match self {
            Phase::Build => "build",
            Phase::Sum => "sum",
            Phase::Place => "place",
            Phase::PlaceFaithful => "place-faithful",
            Phase::EndToEnd => "e2e",
        }
    }
}

/// One sort phase (or the whole sort) packaged as a deterministic
/// [`ExploreTarget`] for the schedule explorer.
///
/// # Examples
///
/// ```
/// use pram::Explorer;
/// use wfsort::explore::{Phase, PhaseTarget};
///
/// let target = PhaseTarget::new(Phase::Sum, vec![2, 1, 3], 2);
/// let report = Explorer::new(1).exhaustive(&target);
/// assert!(report.counterexample.is_none());
/// assert!(report.stats.runs > 1);
/// ```
#[derive(Clone, Debug)]
pub struct PhaseTarget {
    phase: Phase,
    keys: Vec<Word>,
    nprocs: usize,
    seed: u64,
    plan: FailurePlan,
}

impl PhaseTarget {
    /// Creates a target exploring `phase` over `keys` with `nprocs`
    /// simulated processors.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is empty, `nprocs` is zero, or fewer than two
    /// keys are given for [`Phase::Build`] / [`Phase::EndToEnd`] (which
    /// need at least one WAT job).
    pub fn new(phase: Phase, keys: Vec<Word>, nprocs: usize) -> Self {
        assert!(!keys.is_empty(), "need at least one key");
        assert!(nprocs > 0, "need at least one processor");
        if matches!(phase, Phase::Build | Phase::EndToEnd) {
            assert!(keys.len() >= 2, "build/e2e targets need at least two keys");
        }
        PhaseTarget {
            phase,
            keys,
            nprocs,
            seed: 13,
            plan: FailurePlan::new(),
        }
    }

    /// Sets the machine seed (irrelevant to serialized schedules — one
    /// operation per cycle leaves nothing to arbitrate — but recorded in
    /// the label so tokens name the exact machine).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Composes a crash/revive plan into every explored run. The explorer
    /// folds it into emitted counterexample tokens.
    pub fn with_failures(mut self, plan: FailurePlan) -> Self {
        self.plan = plan;
        self
    }

    fn n(&self) -> usize {
        self.keys.len()
    }

    /// The element arrays at the addresses [`ExploreTarget::build`] used —
    /// layouts are deterministic, so laying the same plan out again finds
    /// the same regions.
    fn arrays(&self) -> ElementArrays {
        let mut layout = MemoryLayout::new();
        match self.phase {
            Phase::EndToEnd => SortLayout::layout(&mut layout, self.n()).elems,
            _ => ElementArrays::layout(&mut layout, self.n()),
        }
    }

    /// The expected 1-based rank of every element, by `(key, index)`.
    fn expected_ranks(&self) -> Vec<(usize, Word)> {
        let mut order: Vec<usize> = (1..=self.n()).collect();
        order.sort_by_key(|&i| (self.keys[i - 1], i));
        order
            .into_iter()
            .enumerate()
            .map(|(rank0, elem)| (elem, rank0 as Word + 1))
            .collect()
    }
}

impl ExploreTarget for PhaseTarget {
    fn label(&self) -> String {
        format!(
            "{}:n={}:p={}:seed={}",
            self.phase.name(),
            self.n(),
            self.nprocs,
            self.seed
        )
    }

    fn build(&self) -> Machine {
        match self.phase {
            Phase::Build => {
                let n = self.n();
                let mut layout = MemoryLayout::new();
                let arrays = ElementArrays::layout(&mut layout, n);
                let build_wat = Wat::layout(&mut layout, n - 1);
                let mut machine = Machine::with_seed(layout.total(), self.seed);
                arrays.load_keys(machine.memory_mut(), &self.keys);
                for i in 0..self.nprocs {
                    machine.add_process(Box::new(WatProcess::new(
                        build_wat,
                        Pid::new(i),
                        self.nprocs,
                        BuildTreeWorker::for_full_sort(arrays),
                    )));
                }
                machine
            }
            Phase::Sum => {
                let (mut machine, arrays) = machine_with_tree(&self.keys, self.seed);
                for i in 0..self.nprocs {
                    machine.add_process(Box::new(TreeSumProcess::new(arrays, Pid::new(i), 1)));
                }
                machine
            }
            Phase::Place | Phase::PlaceFaithful => {
                let (mut machine, arrays) = machine_with_sized_tree(&self.keys, self.seed);
                for i in 0..self.nprocs {
                    let pid = Pid::new(i);
                    let process: Box<dyn pram::Process> = match self.phase {
                        Phase::Place => Box::new(FindPlaceProcess::new(arrays, pid, 1)),
                        _ => Box::new(FindPlaceProcess::faithful_figure6(arrays, pid, 1)),
                    };
                    machine.add_process(process);
                }
                machine
            }
            Phase::EndToEnd => {
                PramSorter::new(SortConfig::new(self.nprocs).seed(self.seed))
                    .prepare(&self.keys)
                    .machine
            }
        }
    }

    fn step_limit(&self) -> u64 {
        // Serialized schedules do the processors' work one step at a
        // time: budget the worst case (fully skewed tree, everyone
        // traverses everything) with room to spare.
        let n = self.n() as u64;
        10_000 + 64 * n * n * self.nprocs as u64
    }

    fn failure_plan(&self) -> FailurePlan {
        self.plan.clone()
    }

    fn watcher(&self) -> Box<dyn Watcher> {
        match self.phase {
            Phase::Build | Phase::EndToEnd => {
                Box::new(WriteOnceWatcher::new(self.arrays().child_regions()))
            }
            _ => Box::new(NoWatcher),
        }
    }

    fn verdict(&self, machine: &Machine) -> Result<(), String> {
        let arrays = self.arrays();
        let memory = machine.memory();
        let n = self.n();
        match self.phase {
            Phase::Build => validate_pivot_tree(memory, &arrays, 1, n)
                .map(|_| ())
                .map_err(|e| format!("pivot tree invalid: {e}")),
            Phase::Sum => {
                let s = |j: Word| {
                    if j == 0 {
                        0
                    } else {
                        memory.read(arrays.size(j as usize))
                    }
                };
                if memory.read(arrays.size(1)) != n as Word {
                    return Err(format!(
                        "root size is {}, expected {n}",
                        memory.read(arrays.size(1))
                    ));
                }
                for i in 1..=n {
                    let small = memory.read(arrays.child(i, Side::Small));
                    let big = memory.read(arrays.child(i, Side::Big));
                    let got = memory.read(arrays.size(i));
                    if got != s(small) + s(big) + 1 {
                        return Err(format!("size invariant broken at element {i}: {got}"));
                    }
                }
                Ok(())
            }
            Phase::Place | Phase::PlaceFaithful => {
                for (elem, rank) in self.expected_ranks() {
                    let got = memory.read(arrays.place(elem));
                    if got != rank {
                        return Err(format!(
                            "element {elem} placed at {got}, expected rank {rank}"
                        ));
                    }
                    if self.phase == Phase::Place && memory.read(arrays.place_done(elem)) != 1 {
                        return Err(format!("element {elem} missing its place_done flag"));
                    }
                }
                Ok(())
            }
            Phase::EndToEnd => {
                let mut layout = MemoryLayout::new();
                let sort_layout = SortLayout::layout(&mut layout, n);
                let output = sort_layout.read_output(memory);
                check_sorted_permutation(&self.keys, &output)
                    .map_err(|e| format!("output invalid: {e}"))
            }
        }
    }
}

/// Watches Lemma 2.5's write-once discipline over the child-pointer
/// arrays: once a cell leaves [`EMPTY`] it must never change again.
struct WriteOnceWatcher {
    regions: [Region; 2],
    seen: Vec<Word>,
}

impl WriteOnceWatcher {
    fn new(regions: [Region; 2]) -> Self {
        let cells = regions.iter().map(|r| r.len()).sum();
        WriteOnceWatcher {
            regions,
            seen: vec![EMPTY; cells],
        }
    }
}

impl Watcher for WriteOnceWatcher {
    fn after_cycle(&mut self, machine: &Machine) -> Result<(), String> {
        let mut i = 0;
        for region in self.regions {
            for addr in region.range() {
                let now = machine.memory().read(addr);
                let before = self.seen[i];
                if before != EMPTY && now != before {
                    return Err(format!(
                        "write-once violation: child cell {addr} changed {before} -> {now}"
                    ));
                }
                self.seen[i] = now;
                i += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram::{Explorer, ScheduleScript, SyncScheduler};

    fn small_keys(n: usize) -> Vec<Word> {
        (0..n as Word).map(|i| (i * 7) % n as Word).collect()
    }

    #[test]
    fn preloaded_tree_matches_what_phase_one_builds() {
        let keys = small_keys(12);
        let (machine, arrays) = machine_with_tree(&keys, 3);
        validate_pivot_tree(machine.memory(), &arrays, 1, keys.len()).expect("local tree valid");
    }

    #[test]
    fn preloaded_sizes_are_consistent() {
        let keys = small_keys(12);
        let (machine, arrays) = machine_with_sized_tree(&keys, 3);
        let mem = machine.memory();
        assert_eq!(mem.read(arrays.size(1)), 12);
        for i in 1..=12usize {
            let s = |j: Word| {
                if j == 0 {
                    0
                } else {
                    mem.read(arrays.size(j as usize))
                }
            };
            let small = mem.read(arrays.child(i, Side::Small));
            let big = mem.read(arrays.child(i, Side::Big));
            assert_eq!(mem.read(arrays.size(i)), s(small) + s(big) + 1);
        }
    }

    #[test]
    fn sized_tree_runs_place_phase_to_correct_ranks() {
        let keys = small_keys(10);
        let target = PhaseTarget::new(Phase::Place, keys, 2);
        let mut machine = target.build();
        machine.run(&mut SyncScheduler, 100_000).unwrap();
        target.verdict(&machine).expect("places are ranks");
    }

    #[test]
    fn every_phase_passes_its_default_schedule() {
        for phase in [
            Phase::Build,
            Phase::Sum,
            Phase::Place,
            Phase::PlaceFaithful,
            Phase::EndToEnd,
        ] {
            let target = PhaseTarget::new(phase, small_keys(6), 3);
            let (_, outcome) = Explorer::replay(&target, &ScheduleScript::new(target.label()));
            assert_eq!(
                outcome.violation, None,
                "{phase:?} failed its default schedule"
            );
        }
    }

    #[test]
    fn exhaustive_sum_n3_p2_is_clean() {
        let target = PhaseTarget::new(Phase::Sum, vec![2, 1, 3], 2);
        let report = Explorer::new(1).exhaustive(&target);
        assert!(
            report.counterexample.is_none(),
            "phase 2 must survive every single-preemption schedule: {:?}",
            report.counterexample
        );
        assert!(report.stats.runs > 10, "only {} runs", report.stats.runs);
    }

    #[test]
    fn exhaustive_build_n3_p3_is_clean_at_bound_one() {
        let target = PhaseTarget::new(Phase::Build, vec![2, 1, 3], 3);
        let report = Explorer::new(1).exhaustive(&target);
        assert!(report.counterexample.is_none());
        assert_eq!(report.stats.runs_by_depth.len(), 2);
    }

    #[test]
    fn composed_crash_is_survivable_by_the_fixed_place_phase() {
        let keys = small_keys(8);
        let plan = FailurePlan::new().crash_at(4, Pid::new(0));
        let target = PhaseTarget::new(Phase::Place, keys, 2).with_failures(plan);
        let report = Explorer::new(1).exhaustive(&target);
        assert!(
            report.counterexample.is_none(),
            "postorder flag must survive the crash on every schedule: {:?}",
            report.counterexample
        );
    }

    #[test]
    fn explorer_breaks_faithful_figure6_under_a_crash() {
        // The acceptance mutation in miniature: crash processor 0
        // mid-placement; the verbatim Figure 6 loses a subtree on some
        // schedule, and the counterexample replays from its token.
        let keys = small_keys(8);
        let mut found = None;
        for crash_cycle in 4..40 {
            let plan = FailurePlan::new().crash_at(crash_cycle, Pid::new(0));
            let target =
                PhaseTarget::new(Phase::PlaceFaithful, keys.clone(), 2).with_failures(plan);
            let report = Explorer::new(2).exhaustive(&target);
            if let Some(ce) = report.counterexample {
                found = Some((target, ce));
                break;
            }
        }
        let (target, ce) = found.expect("some crash cycle breaks verbatim Figure 6");
        assert!(ce.script.preemptions().len() <= 6, "not minimal: {ce:?}");
        let token = ce.script.to_token();
        let parsed = ScheduleScript::from_token(&token).expect("token parses");
        let (_, replayed) = Explorer::replay(&target, &parsed);
        assert_eq!(replayed.violation, Some(ce.violation), "token: {token}");
    }

    #[test]
    fn labels_identify_the_shape() {
        let target = PhaseTarget::new(Phase::EndToEnd, vec![3, 1, 2], 2).seed(9);
        assert_eq!(ExploreTarget::label(&target), "e2e:n=3:p=2:seed=9");
    }
}
