//! Correctness checks shared by tests, property tests and experiments.

use pram::{Memory, Word};

use crate::build::key_less;
use crate::layout::{ElementArrays, Side, EMPTY};

/// Why an output failed verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// Output length differs from input length.
    LengthMismatch {
        /// Input length.
        expected: usize,
        /// Output length.
        actual: usize,
    },
    /// Adjacent output elements out of order at this index.
    NotSorted {
        /// Index `i` with `output[i] > output[i + 1]`.
        index: usize,
    },
    /// Output is sorted but is not a permutation of the input.
    NotPermutation,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::LengthMismatch { expected, actual } => {
                write!(f, "output has {actual} elements, input had {expected}")
            }
            VerifyError::NotSorted { index } => {
                write!(f, "output not sorted at index {index}")
            }
            VerifyError::NotPermutation => write!(f, "output is not a permutation of the input"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Checks that `output` is `input` sorted: same multiset, non-decreasing.
///
/// # Errors
///
/// Returns the first violated property.
pub fn check_sorted_permutation(input: &[Word], output: &[Word]) -> Result<(), VerifyError> {
    if input.len() != output.len() {
        return Err(VerifyError::LengthMismatch {
            expected: input.len(),
            actual: output.len(),
        });
    }
    if let Some(i) = output.windows(2).position(|w| w[0] > w[1]) {
        return Err(VerifyError::NotSorted { index: i });
    }
    let mut sorted_input = input.to_vec();
    sorted_input.sort_unstable();
    if sorted_input != output {
        return Err(VerifyError::NotPermutation);
    }
    Ok(())
}

/// Shape statistics of a pivot tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeStats {
    /// Number of reachable nodes.
    pub nodes: usize,
    /// Depth in edges (0 for a single node).
    pub depth: usize,
}

/// Why a pivot tree failed validation (Lemma 2.5's invariants).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeError {
    /// An element was reachable through two different paths.
    DuplicateReference {
        /// The doubly-referenced element.
        element: usize,
    },
    /// The number of reachable nodes differs from `n`.
    MissingNodes {
        /// Reachable count.
        reachable: usize,
        /// Expected count.
        expected: usize,
    },
    /// A child is on the wrong side of its parent's key.
    OrderViolation {
        /// The offending parent.
        parent: usize,
        /// The misplaced child.
        child: usize,
    },
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::DuplicateReference { element } => {
                write!(f, "element {element} referenced twice in the tree")
            }
            TreeError::MissingNodes {
                reachable,
                expected,
            } => write!(f, "only {reachable} of {expected} elements reachable"),
            TreeError::OrderViolation { parent, child } => {
                write!(f, "child {child} on wrong side of parent {parent}")
            }
        }
    }
}

impl std::error::Error for TreeError {}

/// Validates the pivot tree rooted at `root` (Lemma 2.5): every element
/// reachable exactly once, and each child on the side its key dictates.
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn validate_pivot_tree(
    memory: &Memory,
    arrays: &ElementArrays,
    root: usize,
    n: usize,
) -> Result<TreeStats, TreeError> {
    let mut visited = vec![false; n + 1];
    let mut max_depth = 0usize;
    let mut count = 0usize;
    // (node, depth) explicit stack.
    let mut stack = vec![(root, 0usize)];
    while let Some((node, depth)) = stack.pop() {
        if visited[node] {
            return Err(TreeError::DuplicateReference { element: node });
        }
        visited[node] = true;
        count += 1;
        max_depth = max_depth.max(depth);
        let node_key = memory.read(arrays.key(node));
        for side in [Side::Small, Side::Big] {
            let c = memory.read(arrays.child(node, side));
            if c == EMPTY {
                continue;
            }
            let child = c as usize;
            let child_key = memory.read(arrays.key(child));
            let child_is_smaller = key_less(child_key, child, node_key, node);
            let expected_side = if child_is_smaller {
                Side::Small
            } else {
                Side::Big
            };
            if side != expected_side {
                return Err(TreeError::OrderViolation {
                    parent: node,
                    child,
                });
            }
            stack.push((child, depth + 1));
        }
    }
    if count != n {
        return Err(TreeError::MissingNodes {
            reachable: count,
            expected: n,
        });
    }
    Ok(TreeStats {
        nodes: count,
        depth: max_depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram::MemoryLayout;

    #[test]
    fn accepts_valid_sort() {
        assert!(check_sorted_permutation(&[3, 1, 2], &[1, 2, 3]).is_ok());
        assert!(check_sorted_permutation(&[], &[]).is_ok());
        assert!(check_sorted_permutation(&[2, 2], &[2, 2]).is_ok());
    }

    #[test]
    fn rejects_length_mismatch() {
        assert_eq!(
            check_sorted_permutation(&[1, 2], &[1]),
            Err(VerifyError::LengthMismatch {
                expected: 2,
                actual: 1
            })
        );
    }

    #[test]
    fn rejects_unsorted() {
        assert_eq!(
            check_sorted_permutation(&[1, 2], &[2, 1]),
            Err(VerifyError::NotSorted { index: 0 })
        );
    }

    #[test]
    fn rejects_wrong_multiset() {
        assert_eq!(
            check_sorted_permutation(&[1, 2], &[1, 3]),
            Err(VerifyError::NotPermutation)
        );
        // Sorted, right length, but an input value duplicated over another.
        assert_eq!(
            check_sorted_permutation(&[1, 2], &[1, 1]),
            Err(VerifyError::NotPermutation)
        );
    }

    fn arrays_with_tree(keys: &[Word], small: &[Word], big: &[Word]) -> (Memory, ElementArrays) {
        let n = keys.len();
        let mut l = MemoryLayout::new();
        let arrays = ElementArrays::layout(&mut l, n);
        let mut mem = Memory::new(l.total());
        arrays.load_keys(&mut mem, keys);
        mem.load(arrays.child(1, Side::Small) - 1, small);
        mem.load(arrays.child(1, Side::Big) - 1, big);
        (mem, arrays)
    }

    #[test]
    fn validates_correct_tree() {
        // keys: element1=2, element2=1, element3=3; tree: 1 at root,
        // small child 2, big child 3.
        let (mem, arrays) = arrays_with_tree(&[2, 1, 3], &[0, 2, 0, 0], &[0, 3, 0, 0]);
        let stats = validate_pivot_tree(&mem, &arrays, 1, 3).unwrap();
        assert_eq!(stats, TreeStats { nodes: 3, depth: 1 });
    }

    #[test]
    fn detects_order_violation() {
        // element3 (key 3) placed as SMALL child of element1 (key 2).
        let (mem, arrays) = arrays_with_tree(&[2, 1, 3], &[0, 3, 0, 0], &[0, 2, 0, 0]);
        assert_eq!(
            validate_pivot_tree(&mem, &arrays, 1, 3),
            Err(TreeError::OrderViolation {
                parent: 1,
                child: 3
            })
        );
    }

    #[test]
    fn detects_missing_nodes() {
        let (mem, arrays) = arrays_with_tree(&[2, 1, 3], &[0, 2, 0, 0], &[0, 0, 0, 0]);
        assert_eq!(
            validate_pivot_tree(&mem, &arrays, 1, 3),
            Err(TreeError::MissingNodes {
                reachable: 2,
                expected: 3
            })
        );
    }

    #[test]
    fn detects_duplicate_reference() {
        // element2 is both small and big child of the root.
        let (mem, arrays) = arrays_with_tree(&[2, 1, 3], &[0, 2, 0, 0], &[0, 2, 0, 0]);
        let err = validate_pivot_tree(&mem, &arrays, 1, 3).unwrap_err();
        assert!(matches!(
            err,
            TreeError::DuplicateReference { element: 2 } | TreeError::OrderViolation { .. }
        ));
    }
}
