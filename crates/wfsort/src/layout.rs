//! Shared-memory layout of the sorting data structure (Figure 3).
//!
//! The paper attaches `child[BIG, SMALL]`, `size` and `place` fields to
//! each record of the input array `A`. We lay the same fields out as
//! structure-of-arrays over the machine's flat memory, one cell per
//! element per field, with 1-based element indexing so the paper's
//! `EMPTY = 0` sentinel works unchanged. A `parent` array is added for the
//! low-contention phases of §3.3, which probe nodes at random and need to
//! reach a node's parent without a root-to-node walk.

use pram::{Addr, Memory, MemoryLayout, Region, Word};

/// Sentinel: "no child" / "not computed yet".
pub const EMPTY: Word = 0;

/// Side selector for child pointers. The paper uses `BIG = 0, SMALL = 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// The subtree of larger keys.
    Big,
    /// The subtree of smaller keys.
    Small,
}

impl Side {
    /// The other side.
    pub fn other(self) -> Side {
        match self {
            Side::Big => Side::Small,
            Side::Small => Side::Big,
        }
    }

    /// Decodes a processor-ID bit as in Figures 5–6: a set bit visits the
    /// `SMALL` side first (the paper's `SMALL = 1`).
    pub fn from_bit(bit: bool) -> Side {
        if bit {
            Side::Small
        } else {
            Side::Big
        }
    }
}

/// The per-element field arrays of the sort, each `n + 1` cells
/// (cell 0 unused so element indices `1..=n` address directly).
#[derive(Clone, Copy, Debug)]
pub struct ElementArrays {
    n: usize,
    keys: Region,
    child_small: Region,
    child_big: Region,
    size: Region,
    place: Region,
    place_done: Region,
    parent: Region,
}

impl ElementArrays {
    /// Reserves the field arrays for `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn layout(layout: &mut MemoryLayout, n: usize) -> Self {
        assert!(n > 0, "need at least one element");
        ElementArrays {
            n,
            keys: layout.region(n + 1),
            child_small: layout.region(n + 1),
            child_big: layout.region(n + 1),
            size: layout.region(n + 1),
            place: layout.region(n + 1),
            place_done: layout.region(n + 1),
            parent: layout.region(n + 1),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the arrays hold zero elements (never true — `layout`
    /// rejects `n = 0` — but provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Address of element `i`'s key (`1 <= i <= n`).
    pub fn key(&self, i: usize) -> Addr {
        self.keys.at(i)
    }

    /// Address of element `i`'s child pointer on `side`.
    pub fn child(&self, i: usize, side: Side) -> Addr {
        match side {
            Side::Small => self.child_small.at(i),
            Side::Big => self.child_big.at(i),
        }
    }

    /// Address of element `i`'s subtree size.
    pub fn size(&self, i: usize) -> Addr {
        self.size.at(i)
    }

    /// Address of element `i`'s sorted rank (1-based when computed).
    pub fn place(&self, i: usize) -> Addr {
        self.place.at(i)
    }

    /// Address of element `i`'s phase-3 completion flag (see the
    /// DESIGN.md note on the Figure 6 crash-window fix).
    pub fn place_done(&self, i: usize) -> Addr {
        self.place_done.at(i)
    }

    /// Address of element `i`'s parent pointer (`EMPTY` for the root).
    pub fn parent(&self, i: usize) -> Addr {
        self.parent.at(i)
    }

    /// Returns a copy of these arrays that addresses `donor`'s key array
    /// instead of its own.
    ///
    /// The group phase of the low-contention sort (§3.2) needs scratch
    /// `child`/`size`/`place` fields that must not pollute the final
    /// pivot tree, while comparing the *same* keys — this view provides
    /// exactly that.
    pub fn sharing_keys_of(mut self, donor: &ElementArrays) -> Self {
        self.keys = donor.keys;
        self
    }

    /// Loads the input keys into shared memory (element `i` gets
    /// `keys[i - 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() != self.len()`.
    pub fn load_keys(&self, memory: &mut Memory, keys: &[Word]) {
        assert_eq!(keys.len(), self.n, "key count mismatch");
        memory.load(self.keys.at(1), keys);
    }

    /// Region of both child-pointer arrays, for write-once watching in
    /// tests (Lemma 2.5: child pointers never change once set).
    pub fn child_regions(&self) -> [Region; 2] {
        [self.child_small, self.child_big]
    }

    /// Reads the pivot-tree structure out of memory: returns
    /// `(child_small, child_big)` vectors indexed by element (entry 0
    /// unused).
    pub fn read_tree(&self, memory: &Memory) -> (Vec<Word>, Vec<Word>) {
        (
            memory.snapshot(self.child_small.range()),
            memory.snapshot(self.child_big.range()),
        )
    }
}

/// The sort's full memory plan: element arrays, the output array and the
/// work-assignment structures for the build and scatter phases.
#[derive(Clone, Copy, Debug)]
pub struct SortLayout {
    /// Per-element field arrays.
    pub elems: ElementArrays,
    /// The sorted output, `n` cells, 0-based.
    pub output: Region,
    /// Marker cell each processor bumps when it finishes (diagnostics).
    pub finished: Region,
}

impl SortLayout {
    /// Reserves everything the three-phase sort needs for `n` elements.
    pub fn layout(layout: &mut MemoryLayout, n: usize) -> Self {
        let elems = ElementArrays::layout(layout, n);
        let output = layout.region(n);
        let finished = layout.region(1);
        SortLayout {
            elems,
            output,
            finished,
        }
    }

    /// Reads the sorted output from memory.
    pub fn read_output(&self, memory: &Memory) -> Vec<Word> {
        memory.snapshot(self.output.range())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_other_and_bits() {
        assert_eq!(Side::Big.other(), Side::Small);
        assert_eq!(Side::Small.other(), Side::Big);
        assert_eq!(Side::from_bit(true), Side::Small);
        assert_eq!(Side::from_bit(false), Side::Big);
    }

    #[test]
    fn arrays_are_disjoint() {
        let mut l = MemoryLayout::new();
        let a = ElementArrays::layout(&mut l, 4);
        let addrs = [
            a.key(1),
            a.child(1, Side::Small),
            a.child(1, Side::Big),
            a.size(1),
            a.place(1),
            a.place_done(1),
            a.parent(1),
        ];
        let mut unique = addrs.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), addrs.len(), "field arrays alias");
    }

    #[test]
    fn one_based_indexing() {
        let mut l = MemoryLayout::new();
        let a = ElementArrays::layout(&mut l, 4);
        assert_eq!(a.key(1), a.key(2) - 1);
        // Cell 0 exists but is never addressed by elements.
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn load_keys_places_values() {
        let mut l = MemoryLayout::new();
        let a = ElementArrays::layout(&mut l, 3);
        let mut mem = Memory::new(l.total());
        a.load_keys(&mut mem, &[30, 10, 20]);
        assert_eq!(mem.read(a.key(1)), 30);
        assert_eq!(mem.read(a.key(2)), 10);
        assert_eq!(mem.read(a.key(3)), 20);
    }

    #[test]
    #[should_panic(expected = "key count mismatch")]
    fn load_keys_checks_length() {
        let mut l = MemoryLayout::new();
        let a = ElementArrays::layout(&mut l, 3);
        let mut mem = Memory::new(l.total());
        a.load_keys(&mut mem, &[1, 2]);
    }

    #[test]
    fn sort_layout_output_is_zero_based() {
        let mut l = MemoryLayout::new();
        let s = SortLayout::layout(&mut l, 5);
        assert_eq!(s.output.len(), 5);
        let mem = Memory::new(l.total());
        assert_eq!(s.read_output(&mem), vec![0; 5]);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn zero_elements_rejected() {
        let mut l = MemoryLayout::new();
        ElementArrays::layout(&mut l, 0);
    }
}
