//! Input distributions for experiments and tests.
//!
//! Lemma 2.8 assumes "the elements in the initial array are in random
//! order"; the randomized allocation of §2.3 removes that assumption.
//! These generators produce both the benign distributions and the
//! adversarial ones (pre-sorted, sawtooth) that separate the two
//! strategies — experiment E12.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use pram::Word;

/// A named input distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Independent uniform values in `0..n` (duplicates likely).
    UniformRandom,
    /// A random permutation of `0..n` (distinct keys, random order — the
    /// paper's Lemma 2.8 setting).
    RandomPermutation,
    /// Already sorted ascending — worst case for deterministic Quicksort
    /// tree depth.
    Sorted,
    /// Sorted descending.
    Reverse,
    /// Only `k` distinct values, shuffled.
    FewDistinct(usize),
    /// Repeating ascending runs of the given period.
    Sawtooth(usize),
    /// Ascends to the middle then descends (organ pipe).
    OrganPipe,
    /// Every key identical — stresses the index tie-break.
    AllEqual,
    /// Sorted ascending, then perturbed by the given number of random
    /// adjacent-ish swaps — the "almost sorted" regime between the
    /// benign permutation and the adversarial sorted input.
    NearlySorted(usize),
}

impl Workload {
    /// Generates `n` keys, deterministically from `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Word> {
        let mut rng = StdRng::seed_from_u64(seed);
        match *self {
            Workload::UniformRandom => (0..n).map(|_| rng.gen_range(0..n.max(1) as Word)).collect(),
            Workload::RandomPermutation => {
                let mut v: Vec<Word> = (0..n as Word).collect();
                v.shuffle(&mut rng);
                v
            }
            Workload::Sorted => (0..n as Word).collect(),
            Workload::Reverse => (0..n as Word).rev().collect(),
            Workload::FewDistinct(k) => {
                let k = k.max(1) as Word;
                (0..n).map(|_| rng.gen_range(0..k)).collect()
            }
            Workload::Sawtooth(period) => {
                let period = period.max(1);
                (0..n).map(|i| (i % period) as Word).collect()
            }
            Workload::OrganPipe => (0..n)
                .map(|i| if i < n / 2 { i } else { n - i } as Word)
                .collect(),
            Workload::AllEqual => vec![7; n],
            Workload::NearlySorted(swaps) => {
                let mut v: Vec<Word> = (0..n as Word).collect();
                if n >= 2 {
                    for _ in 0..swaps {
                        let i = rng.gen_range(0..n - 1);
                        v.swap(i, i + 1);
                    }
                }
                v
            }
        }
    }

    /// A short stable name for tables and bench IDs.
    pub fn name(&self) -> &'static str {
        match *self {
            Workload::UniformRandom => "uniform",
            Workload::RandomPermutation => "permutation",
            Workload::Sorted => "sorted",
            Workload::Reverse => "reverse",
            Workload::FewDistinct(_) => "few-distinct",
            Workload::Sawtooth(_) => "sawtooth",
            Workload::OrganPipe => "organ-pipe",
            Workload::AllEqual => "all-equal",
            Workload::NearlySorted(_) => "nearly-sorted",
        }
    }

    /// Looks a workload up by its [`Workload::name`] (parameterized
    /// variants get library defaults). Returns `None` for unknown names.
    pub fn by_name(name: &str) -> Option<Workload> {
        Some(match name {
            "uniform" => Workload::UniformRandom,
            "permutation" => Workload::RandomPermutation,
            "sorted" => Workload::Sorted,
            "reverse" => Workload::Reverse,
            "few-distinct" => Workload::FewDistinct(4),
            "sawtooth" => Workload::Sawtooth(8),
            "organ-pipe" => Workload::OrganPipe,
            "all-equal" => Workload::AllEqual,
            "nearly-sorted" => Workload::NearlySorted(8),
            _ => return None,
        })
    }

    /// The standard suite used by tests and experiments.
    pub fn all() -> Vec<Workload> {
        vec![
            Workload::UniformRandom,
            Workload::RandomPermutation,
            Workload::Sorted,
            Workload::Reverse,
            Workload::FewDistinct(4),
            Workload::Sawtooth(8),
            Workload::OrganPipe,
            Workload::AllEqual,
            Workload::NearlySorted(8),
        ]
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_requested_length() {
        for w in Workload::all() {
            assert_eq!(w.generate(33, 1).len(), 33, "{w}");
            assert_eq!(w.generate(0, 1).len(), 0, "{w}");
        }
    }

    #[test]
    fn permutation_contains_each_value_once() {
        let mut v = Workload::RandomPermutation.generate(100, 5);
        v.sort_unstable();
        assert_eq!(v, (0..100).collect::<Vec<Word>>());
    }

    #[test]
    fn sorted_and_reverse_are_monotone() {
        let s = Workload::Sorted.generate(10, 0);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        let r = Workload::Reverse.generate(10, 0);
        assert!(r.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn few_distinct_respects_bound() {
        let v = Workload::FewDistinct(3).generate(50, 2);
        assert!(v.iter().all(|&x| (0..3).contains(&x)));
    }

    #[test]
    fn deterministic_in_seed() {
        for w in Workload::all() {
            assert_eq!(w.generate(20, 9), w.generate(20, 9), "{w}");
        }
    }

    #[test]
    fn organ_pipe_peaks_in_middle() {
        let v = Workload::OrganPipe.generate(10, 0);
        let max = *v.iter().max().unwrap();
        assert_eq!(v[4].max(v[5]), max);
        assert!(v[0] < max && v[9] < max);
    }

    #[test]
    fn nearly_sorted_is_a_perturbed_identity() {
        let v = Workload::NearlySorted(5).generate(50, 3);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<Word>>());
        // At most 2 * swaps positions moved.
        let displaced = v
            .iter()
            .enumerate()
            .filter(|&(i, &x)| x != i as Word)
            .count();
        assert!(displaced <= 10, "too many displaced: {displaced}");
    }

    #[test]
    fn by_name_roundtrips_every_suite_member() {
        for w in Workload::all() {
            let back = Workload::by_name(w.name()).unwrap_or_else(|| panic!("{w}"));
            assert_eq!(back.name(), w.name());
        }
        assert_eq!(Workload::by_name("nope"), None);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Workload::Sawtooth(8).name(), "sawtooth");
        assert_eq!(Workload::AllEqual.to_string(), "all-equal");
    }
}
