//! The low-contention randomized sort of §3.
//!
//! The deterministic algorithm of §2 suffers `O(P)` contention — at the
//! very start, all `P` processors race to install their elements at the
//! root. This module implements the paper's three-stage remedy (group
//! sort → winner selection → fat-tree build) plus the probing summation
//! and placement phases of §3.3, bringing contention down to
//! `O(sqrt(P))` with high probability while keeping the sort wait-free.
//!
//! Entry point: [`LowContentionSorter`].

mod fat_tree;
mod lc_build;
mod lc_place;
mod lc_sum;
mod sort;

pub use fat_tree::{FatCursor, FatEdgeWorker, FatFillProcess, FatNodeInfo, FatTree, WinnerContext};
pub use lc_build::FatBuildWorker;
pub use lc_place::LcPlaceProcess;
pub use lc_sum::{LcSumProcess, ProbeState, ALLDONE};
pub use sort::{LcSortError, LowContentionConfig, LowContentionSorter};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_sorted_permutation;
    use crate::workload::Workload;
    use pram::{failure::FailurePlan, Pid, SyncScheduler};

    #[test]
    fn supported_lengths() {
        assert!(LowContentionSorter::supports_length(4));
        assert!(LowContentionSorter::supports_length(16));
        assert!(LowContentionSorter::supports_length(64));
        assert!(LowContentionSorter::supports_length(256));
        assert!(!LowContentionSorter::supports_length(0));
        assert!(!LowContentionSorter::supports_length(2));
        assert!(!LowContentionSorter::supports_length(8));
        assert!(!LowContentionSorter::supports_length(15));
        assert!(!LowContentionSorter::supports_length(32));
    }

    #[test]
    fn rejects_unsupported_length() {
        let err = LowContentionSorter::default().sort(&[1, 2, 3]).unwrap_err();
        assert_eq!(err, LcSortError::UnsupportedLength { len: 3 });
        assert!(err.to_string().contains("4^k"));
    }

    #[test]
    fn sorts_smallest_instance() {
        let keys = vec![3, 1, 4, 2];
        let outcome = LowContentionSorter::default().sort(&keys).unwrap();
        assert_eq!(outcome.sorted, vec![1, 2, 3, 4]);
    }

    #[test]
    fn sorts_n16_all_workloads() {
        for w in Workload::all() {
            let keys = w.generate(16, 3);
            let outcome = LowContentionSorter::default()
                .sort(&keys)
                .unwrap_or_else(|e| panic!("{w}: {e}"));
            check_sorted_permutation(&keys, &outcome.sorted).unwrap_or_else(|e| panic!("{w}: {e}"));
        }
    }

    #[test]
    fn sorts_n64_random_and_sorted() {
        for w in [Workload::RandomPermutation, Workload::Sorted] {
            let keys = w.generate(64, 9);
            let outcome = LowContentionSorter::default().sort(&keys).unwrap();
            check_sorted_permutation(&keys, &outcome.sorted).unwrap();
        }
    }

    #[test]
    fn sorts_n256_uniform() {
        let keys = Workload::UniformRandom.generate(256, 5);
        let outcome = LowContentionSorter::default().sort(&keys).unwrap();
        check_sorted_permutation(&keys, &outcome.sorted).unwrap();
    }

    #[test]
    fn deterministic_per_seed() {
        let keys = Workload::RandomPermutation.generate(64, 2);
        let run = |seed| {
            let outcome = LowContentionSorter::new(LowContentionConfig {
                seed,
                ..Default::default()
            })
            .sort(&keys)
            .unwrap();
            (outcome.sorted, outcome.report.metrics.cycles)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn contention_stays_well_below_p() {
        let n = 256; // P = 256, sqrt(P) = 16
        let keys = Workload::RandomPermutation.generate(n, 11);
        let outcome = LowContentionSorter::default().sort(&keys).unwrap();
        let contention = outcome.report.metrics.max_contention;
        assert!(
            contention <= n / 4,
            "contention {contention} too close to P = {n}"
        );
    }

    #[test]
    fn lower_contention_than_deterministic_sort() {
        let n = 256;
        let keys = Workload::RandomPermutation.generate(n, 13);
        let lc = LowContentionSorter::default().sort(&keys).unwrap();
        let det = crate::PramSorter::new(crate::SortConfig::new(n))
            .sort(&keys)
            .unwrap();
        // Deterministic: everyone storms the root -> contention ~P.
        // Low-contention: fat tree caps it near sqrt(P).
        assert!(
            lc.report.metrics.max_contention * 2 <= det.report.metrics.max_contention,
            "lc {} vs det {}",
            lc.report.metrics.max_contention,
            det.report.metrics.max_contention
        );
    }

    #[test]
    fn survives_crashes() {
        let n = 16;
        let keys = Workload::RandomPermutation.generate(n, 4);
        for seed in 0..4 {
            let plan = FailurePlan::random_crashes(n, 0.5, 400, seed);
            let outcome = LowContentionSorter::default()
                .sort_under(&keys, &mut SyncScheduler, &plan)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            check_sorted_permutation(&keys, &outcome.sorted)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn starved_fat_tree_falls_back_to_authoritative_slice() {
        // One fill round over 64 copies per node leaves almost every fat
        // cell empty; builders must take the authoritative-slice fallback
        // path constantly, and the sort must not care.
        let keys = Workload::RandomPermutation.generate(64, 6);
        let outcome = LowContentionSorter::new(LowContentionConfig {
            fill_rounds: Some(1),
            fat_copies: Some(64),
            ..Default::default()
        })
        .sort(&keys)
        .unwrap();
        check_sorted_permutation(&keys, &outcome.sorted).unwrap();
    }

    #[test]
    fn sorts_under_sequential_scheduler() {
        // Full asynchrony: one operation per cycle.
        let keys = Workload::UniformRandom.generate(16, 8);
        let outcome = LowContentionSorter::default()
            .sort_under(
                &keys,
                &mut pram::SingleStepScheduler::new(),
                &FailurePlan::new(),
            )
            .unwrap();
        check_sorted_permutation(&keys, &outcome.sorted).unwrap();
    }

    #[test]
    fn sorts_under_random_scheduler() {
        let keys = Workload::Sawtooth(4).generate(16, 9);
        let outcome = LowContentionSorter::default()
            .sort_under(
                &keys,
                &mut pram::RandomScheduler::new(5, 0.4),
                &FailurePlan::new(),
            )
            .unwrap();
        check_sorted_permutation(&keys, &outcome.sorted).unwrap();
    }

    #[test]
    fn timeline_is_recorded_on_request() {
        let keys = Workload::RandomPermutation.generate(16, 2);
        let outcome = LowContentionSorter::default()
            .sort_with_timeline(&keys)
            .unwrap();
        let tl = outcome.report.metrics.timeline.as_ref().expect("timeline");
        assert_eq!(tl.len() as u64, outcome.report.metrics.cycles);
        assert_eq!(
            tl.iter().copied().max().unwrap() as usize,
            outcome.report.metrics.max_contention
        );
    }

    #[test]
    fn supports_p_ne_n_combinations() {
        assert!(LowContentionSorter::supports(64, 16));
        assert!(LowContentionSorter::supports(100, 4));
        assert!(LowContentionSorter::supports(4096, 256));
        assert!(!LowContentionSorter::supports(10, 16), "P > N");
        assert!(
            !LowContentionSorter::supports(66, 16),
            "sqrt(P) does not divide N"
        );
        assert!(!LowContentionSorter::supports(64, 8), "P not 4^k");
    }

    #[test]
    fn sorts_with_fewer_processors_than_elements() {
        for (n, p) in [(64usize, 16usize), (128, 16), (256, 64), (100, 4), (48, 16)] {
            let keys = Workload::UniformRandom.generate(n, 7 + n as u64);
            let outcome = LowContentionSorter::default()
                .sort_with_processors(&keys, p)
                .unwrap_or_else(|e| panic!("n={n} p={p}: {e}"));
            check_sorted_permutation(&keys, &outcome.sorted)
                .unwrap_or_else(|e| panic!("n={n} p={p}: {e}"));
        }
    }

    #[test]
    fn p_ne_n_contention_still_bounded_by_sqrt_p() {
        let (n, p) = (1024usize, 64usize);
        let keys = Workload::RandomPermutation.generate(n, 3);
        let outcome = LowContentionSorter::default()
            .sort_with_processors(&keys, p)
            .unwrap();
        check_sorted_permutation(&keys, &outcome.sorted).unwrap();
        // sqrt(P) = 8; allow generous slack over the group-phase floor.
        assert!(
            outcome.report.metrics.max_contention <= 16,
            "contention {} exceeds O(sqrt P) for P={p}",
            outcome.report.metrics.max_contention
        );
    }

    #[test]
    fn p_ne_n_rejects_bad_combinations() {
        let keys = Workload::UniformRandom.generate(66, 1);
        let err = LowContentionSorter::default()
            .sort_with_processors(&keys, 16)
            .unwrap_err();
        assert!(matches!(err, LcSortError::UnsupportedLength { .. }));
    }

    #[test]
    fn survives_targeted_early_crashes() {
        let n = 16;
        let keys = Workload::Reverse.generate(n, 0);
        // Crash the entire winning-candidate group's processors early.
        let mut plan = FailurePlan::new();
        for i in 0..4 {
            plan = plan.crash_at(30 + i as u64, Pid::new(i));
        }
        let outcome = LowContentionSorter::default()
            .sort_under(&keys, &mut SyncScheduler, &plan)
            .unwrap();
        check_sorted_permutation(&keys, &outcome.sorted).unwrap();
    }
}
