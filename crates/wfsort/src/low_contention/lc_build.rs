//! Phase 1 of the low-contention sort: building the full Quicksort tree
//! with the fat tree serving its top levels (§3.2).
//!
//! Descent through the first `log sqrt(P)` levels reads a uniformly
//! random duplicate of each fat node, so no cell is shared by more than
//! `O(sqrt(P))` expected processors. Falling off the bottom of the fat
//! tree, the walk continues with the ordinary CAS protocol of Figure 4 on
//! the element arrays.
//!
//! The same worker also executes the *edge jobs* appended to the build
//! WAT (see [`super::fat_tree::FatEdgeWorker`]); bundling them in one WAT
//! means the WAT's completion implies both that every element is inserted
//! *and* that the winner slice's internal edges exist — which is what the
//! probing phases of §3.3 traverse.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pram::{Op, OpResult, Pid, Word};
use wat::{LeafWorker, WorkerOp};

use crate::build::key_less;
use crate::layout::{ElementArrays, Side, EMPTY};

use super::fat_tree::{FatCursor, FatEdgeWorker, FatTree, WinnerContext};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum St {
    ReadWinner,
    AwaitWinner,
    Begin,
    AwaitMyKey,
    AwaitFatIdx,
    AwaitSliceFallback,
    AwaitFallbackKey,
    AwaitFatKey,
    AwaitRealKey,
    AwaitCas,
    AwaitParentPtr,
    EdgeJob,
    Finished,
}

/// Leaf worker for the low-contention build WAT: jobs `0..n` insert
/// element `job + 1` (skipping winner-slice elements), jobs `n..n + m`
/// run the edge jobs for the winner slice.
pub struct FatBuildWorker {
    arrays: ElementArrays,
    fat: FatTree,
    ctx: WinnerContext,
    pid: Pid,
    n: usize,
    rng: StdRng,
    edges: FatEdgeWorker,
    state: St,
    winner: Word,
    element: usize,
    my_key: Word,
    cursor: FatCursor,
    /// Element index read from the fat node (or the slice fallback).
    fat_elem: Word,
    /// In the A-protocol tail: the current candidate parent.
    parent: usize,
}

impl FatBuildWorker {
    /// Creates the worker for `pid`; `n` is the number of elements.
    pub fn new(
        arrays: ElementArrays,
        fat: FatTree,
        ctx: WinnerContext,
        pid: Pid,
        n: usize,
        seed: u64,
    ) -> Self {
        FatBuildWorker {
            arrays,
            fat,
            ctx,
            pid,
            n,
            rng: StdRng::seed_from_u64(
                seed ^ (pid.index() as u64).wrapping_mul(0x853C_49E6_748F_EA9B),
            ),
            edges: FatEdgeWorker::new(&fat, ctx, arrays, pid),
            state: St::Finished,
            winner: 0,
            element: 0,
            my_key: 0,
            cursor: FatCursor::root(1),
            fat_elem: 0,
            parent: 0,
        }
    }

    /// Whether `element` belongs to the winning group's slice (groups
    /// partition elements by index: group `g` owns `g*m + 1 ..= (g+1)*m`).
    fn in_winner_slice(&self, element: usize) -> bool {
        let m = self.ctx.m;
        let g = self.winner as usize - 1;
        element > g * m && element <= (g + 1) * m
    }

    /// Emits the read of a random duplicate of the current fat node's
    /// index cell.
    fn probe_fat(&mut self) -> WorkerOp {
        let c = self.rng.gen_range(0..self.fat.copies());
        self.fat_elem = c as Word; // stash the copy for the key read
        self.state = St::AwaitFatIdx;
        WorkerOp::Op(Op::Read(self.fat.idx_at(self.cursor.h, c)))
    }

    /// Decides the descent side at the current fat node given its
    /// `(key, element)` pair, and either keeps descending in the fat tree
    /// or switches to the CAS protocol.
    fn descend(&mut self, node_key: Word, node_elem: usize) -> WorkerOp {
        let side = if key_less(self.my_key, self.element, node_key, node_elem) {
            Side::Small
        } else {
            Side::Big
        };
        match self.cursor.child(side) {
            Some(child) => {
                self.cursor = child;
                self.probe_fat()
            }
            None => {
                // Off the fat tree: CAS into the real child slot of the
                // fat node's element — exactly the slot the edge jobs
                // leave untouched (its fat subrange is empty).
                self.parent = node_elem;
                self.state = St::AwaitCas;
                WorkerOp::Op(Op::Cas {
                    addr: self.arrays.child(self.parent, side),
                    expected: EMPTY,
                    new: self.element as Word,
                })
            }
        }
    }
}

impl LeafWorker for FatBuildWorker {
    fn begin(&mut self, job: usize) {
        if job >= self.n {
            self.edges.begin(job - self.n);
            self.state = St::EdgeJob;
            return;
        }
        self.element = job + 1;
        self.state = if self.winner == 0 {
            St::ReadWinner
        } else {
            St::Begin
        };
    }

    fn step(&mut self, last: Option<OpResult>) -> WorkerOp {
        match self.state {
            St::EdgeJob => self.edges.step(last),
            St::ReadWinner => {
                self.state = St::AwaitWinner;
                WorkerOp::Op(Op::Read(self.ctx.result_of(self.pid)))
            }
            St::AwaitWinner => {
                self.winner = last.expect("winner read pending").read_value();
                debug_assert!(self.winner >= 1, "build before winner selection");
                self.step_begin()
            }
            St::Begin => self.step_begin(),
            St::AwaitMyKey => {
                self.my_key = last.expect("key read pending").read_value();
                self.cursor = FatCursor::root(self.ctx.m);
                self.probe_fat()
            }
            St::AwaitFatIdx => {
                let e = last.expect("fat idx pending").read_value();
                let copy = self.fat_elem as usize;
                if e == 0 {
                    // Unfilled duplicate: fall back to the authoritative
                    // slice cell (rare; write-most fills w.h.p.).
                    self.state = St::AwaitSliceFallback;
                    WorkerOp::Op(Op::Read(
                        self.ctx.slice_cell(self.winner, self.cursor.mid()),
                    ))
                } else {
                    self.fat_elem = e;
                    self.state = St::AwaitFatKey;
                    WorkerOp::Op(Op::Read(self.fat.key_at(self.cursor.h, copy)))
                }
            }
            St::AwaitSliceFallback => {
                self.fat_elem = last.expect("slice fallback pending").read_value();
                self.state = St::AwaitFallbackKey;
                WorkerOp::Op(Op::Read(self.arrays.key(self.fat_elem as usize)))
            }
            St::AwaitFallbackKey | St::AwaitFatKey => {
                let k = last.expect("fat key pending").read_value();
                let e = self.fat_elem as usize;
                self.descend(k, e)
            }
            St::AwaitRealKey => {
                // Below the fat tree: plain Figure 4 protocol (the cursor
                // no longer applies).
                let parent_key = last.expect("parent key pending").read_value();
                let side = if key_less(self.my_key, self.element, parent_key, self.parent) {
                    Side::Small
                } else {
                    Side::Big
                };
                self.state = St::AwaitCas;
                WorkerOp::Op(Op::Cas {
                    addr: self.arrays.child(self.parent, side),
                    expected: EMPTY,
                    new: self.element as Word,
                })
            }
            St::AwaitCas => {
                let current = match last.expect("cas result pending") {
                    OpResult::Cas { current, .. } => current,
                    other => panic!("unexpected {other:?}"),
                };
                if current == self.element as Word {
                    self.state = St::AwaitParentPtr;
                    WorkerOp::Op(Op::Write(
                        self.arrays.parent(self.element),
                        self.parent as Word,
                    ))
                } else {
                    // Occupied: descend to the occupant with the plain
                    // Figure 4 protocol (read its key, pick a side, CAS).
                    self.parent = current as usize;
                    self.state = St::AwaitRealKey;
                    WorkerOp::Op(Op::Read(self.arrays.key(self.parent)))
                }
            }
            St::AwaitParentPtr => {
                self.state = St::Finished;
                WorkerOp::Done
            }
            St::Finished => WorkerOp::Done,
        }
    }
}

impl FatBuildWorker {
    /// First real step of an insert job: skip winner-slice elements, read
    /// our key otherwise.
    fn step_begin(&mut self) -> WorkerOp {
        if self.in_winner_slice(self.element) {
            self.state = St::Finished;
            return WorkerOp::Done;
        }
        self.state = St::AwaitMyKey;
        WorkerOp::Op(Op::Read(self.arrays.key(self.element)))
    }
}

impl std::fmt::Debug for FatBuildWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FatBuildWorker")
            .field("state", &self.state)
            .field("element", &self.element)
            .finish_non_exhaustive()
    }
}
