//! The fat balanced binary tree of §3.2.
//!
//! After a winner group is selected, its sorted slice of `m = sqrt(P)`
//! elements becomes the top of the final Quicksort tree, shaped as the
//! balanced BST over the sorted slice. To keep contention down, every
//! node of that BST is *fattened*: `sqrt(P)` copies of its `(key, index)`
//! pair are kept, and a descending processor reads a uniformly random
//! copy. The root — the worst case — is then shared by `P` processors
//! over `sqrt(P)` copies, i.e. `O(sqrt(P))` contention.
//!
//! The BST shape is pure arithmetic (midpoint recursion over the sorted
//! slice), so *navigating* the fat tree costs no memory reads — only the
//! key/index lookups do. Cells are filled by randomized *write-most*
//! ([`FatFillProcess`]); readers that hit a not-yet-filled copy fall back
//! to the authoritative sorted-slice cell.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pram::{Addr, MemoryLayout, Op, OpResult, Pid, Process, Region, Word};
use wat::{LeafWorker, WorkerOp};

use crate::layout::{ElementArrays, Side};

/// A position in the balanced BST over a sorted slice of length `m`:
/// heap slot `h` covering the half-open range `lo..hi` of slice ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FatCursor {
    /// Heap slot (1-based; children at `2h`, `2h + 1`).
    pub h: usize,
    /// First slice rank covered.
    pub lo: usize,
    /// One past the last slice rank covered.
    pub hi: usize,
}

impl FatCursor {
    /// The root cursor over a slice of length `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn root(m: usize) -> Self {
        assert!(m > 0, "fat tree over empty slice");
        FatCursor { h: 1, lo: 0, hi: m }
    }

    /// The slice rank stored at this node (the midpoint).
    pub fn mid(&self) -> usize {
        (self.lo + self.hi) / 2
    }

    /// The child on `side`, or `None` if its range is empty (descent
    /// leaves the fat tree there).
    pub fn child(&self, side: Side) -> Option<FatCursor> {
        let (lo, hi, h) = match side {
            Side::Small => (self.lo, self.mid(), 2 * self.h),
            Side::Big => (self.mid() + 1, self.hi, 2 * self.h + 1),
        };
        if lo < hi {
            Some(FatCursor { h, lo, hi })
        } else {
            None
        }
    }
}

/// Per-node facts precomputed for fill and edge jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FatNodeInfo {
    /// The node's cursor.
    pub cursor: FatCursor,
    /// Slice rank of the node's parent (`None` at the root).
    pub parent_mid: Option<usize>,
    /// Slice rank of the SMALL child, if any.
    pub small_mid: Option<usize>,
    /// Slice rank of the BIG child, if any.
    pub big_mid: Option<usize>,
}

/// The fat tree's shared-memory plan: `2m` heap slots x `copies` cells
/// for keys and the same for element indices. Index cells double as fill
/// markers (`0` = unfilled; element indices are `>= 1`).
#[derive(Clone, Copy, Debug)]
pub struct FatTree {
    m: usize,
    copies: usize,
    keys: Region,
    idx: Region,
}

impl FatTree {
    /// Reserves memory for the fat tree over a slice of `m` elements with
    /// `copies` duplicates per node.
    ///
    /// # Panics
    ///
    /// Panics if `m` or `copies` is zero.
    pub fn layout(layout: &mut MemoryLayout, m: usize, copies: usize) -> Self {
        assert!(m > 0 && copies > 0, "need a non-empty fat tree");
        FatTree {
            m,
            copies,
            keys: layout.region(2 * m * copies),
            idx: layout.region(2 * m * copies),
        }
    }

    /// Slice length (number of BST nodes).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Duplicates per node.
    pub fn copies(&self) -> usize {
        self.copies
    }

    /// Address of copy `c` of heap slot `h`'s key.
    pub fn key_at(&self, h: usize, c: usize) -> Addr {
        debug_assert!(h >= 1 && h < 2 * self.m && c < self.copies);
        self.keys.at((h - 1) * self.copies + c)
    }

    /// Address of copy `c` of heap slot `h`'s element index.
    pub fn idx_at(&self, h: usize, c: usize) -> Addr {
        debug_assert!(h >= 1 && h < 2 * self.m && c < self.copies);
        self.idx.at((h - 1) * self.copies + c)
    }

    /// Enumerates the `m` BST nodes (preorder) with their family ranks.
    pub fn nodes(&self) -> Vec<FatNodeInfo> {
        let mut out = Vec::with_capacity(self.m);
        let mut stack = vec![(FatCursor::root(self.m), None::<usize>)];
        while let Some((cursor, parent_mid)) = stack.pop() {
            let small = cursor.child(Side::Small);
            let big = cursor.child(Side::Big);
            out.push(FatNodeInfo {
                cursor,
                parent_mid,
                small_mid: small.map(|c| c.mid()),
                big_mid: big.map(|c| c.mid()),
            });
            let mid = cursor.mid();
            if let Some(c) = small {
                stack.push((c, Some(mid)));
            }
            if let Some(c) = big {
                stack.push((c, Some(mid)));
            }
        }
        out
    }
}

/// Shared context the low-contention phases need to find the winner's
/// slice: the per-processor winner-result cells and the concatenated
/// per-group sorted slices.
#[derive(Clone, Copy, Debug)]
pub struct WinnerContext {
    /// One cell per processor: the winner (group index + 1) it observed.
    pub results: Region,
    /// `groups * m` cells; group `g`'s sorted slice (element indices) at
    /// offset `g * m`.
    pub slices: Region,
    /// Slice length.
    pub m: usize,
}

impl WinnerContext {
    /// Address of the winner cell for `pid`.
    pub fn result_of(&self, pid: Pid) -> Addr {
        self.results.at(pid.index())
    }

    /// Address of rank `r` in the winner `w`'s sorted slice (`w` is the
    /// 1-based candidate value, i.e. group index + 1).
    pub fn slice_cell(&self, w: Word, r: usize) -> Addr {
        self.slices.at((w as usize - 1) * self.m + r)
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FillSt {
    ReadWinner,
    AwaitWinner,
    Pick,
    AwaitElem,
    AwaitKey,
    AwaitKeyWrite,
    AwaitIdxWrite,
}

/// Randomized write-most filling of the fat tree (§3.2): each processor
/// copies `rounds` random `(node, copy)` cells from the winner's sorted
/// slice. Writes the key cell *before* the index cell so that a reader
/// that observes a non-zero index is guaranteed a valid key.
#[derive(Debug)]
pub struct FatFillProcess {
    fat: FatTree,
    ctx: WinnerContext,
    arrays: ElementArrays,
    pid: Pid,
    rounds: usize,
    rng: StdRng,
    nodes: Vec<FatNodeInfo>,
    state: FillSt,
    winner: Word,
    h: usize,
    c: usize,
    elem: Word,
}

impl FatFillProcess {
    /// Creates the fill process for `pid` doing `rounds` random copies.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero.
    pub fn new(
        fat: FatTree,
        ctx: WinnerContext,
        arrays: ElementArrays,
        pid: Pid,
        rounds: usize,
        seed: u64,
    ) -> Self {
        assert!(rounds > 0, "need at least one fill round");
        let nodes = fat.nodes();
        FatFillProcess {
            fat,
            ctx,
            arrays,
            pid,
            rounds,
            rng: StdRng::seed_from_u64(
                seed ^ (pid.index() as u64).wrapping_mul(0x9E6D_62D0_6F6A_9A9B),
            ),
            nodes,
            state: FillSt::ReadWinner,
            winner: 0,
            h: 1,
            c: 0,
            elem: 0,
        }
    }
}

impl Process for FatFillProcess {
    fn step(&mut self, mut last: Option<OpResult>) -> Op {
        loop {
            match self.state {
                FillSt::ReadWinner => {
                    self.state = FillSt::AwaitWinner;
                    return Op::Read(self.ctx.result_of(self.pid));
                }
                FillSt::AwaitWinner => {
                    self.winner = last.take().expect("winner read pending").read_value();
                    debug_assert!(self.winner >= 1, "winner selection must precede filling");
                    self.state = FillSt::Pick;
                }
                FillSt::Pick => {
                    if self.rounds == 0 {
                        return Op::Halt;
                    }
                    self.rounds -= 1;
                    let node = self.nodes[self.rng.gen_range(0..self.nodes.len())];
                    self.h = node.cursor.h;
                    self.c = self.rng.gen_range(0..self.fat.copies());
                    self.state = FillSt::AwaitElem;
                    return Op::Read(self.ctx.slice_cell(self.winner, node.cursor.mid()));
                }
                FillSt::AwaitElem => {
                    self.elem = last.take().expect("slice read pending").read_value();
                    self.state = FillSt::AwaitKey;
                    return Op::Read(self.arrays.key(self.elem as usize));
                }
                FillSt::AwaitKey => {
                    let key = last.take().expect("key read pending").read_value();
                    self.state = FillSt::AwaitKeyWrite;
                    return Op::Write(self.fat.key_at(self.h, self.c), key);
                }
                FillSt::AwaitKeyWrite => {
                    last.take();
                    self.state = FillSt::AwaitIdxWrite;
                    return Op::Write(self.fat.idx_at(self.h, self.c), self.elem);
                }
                FillSt::AwaitIdxWrite => {
                    last.take();
                    self.state = FillSt::Pick;
                }
            }
        }
    }

    fn label(&self) -> &'static str {
        "fat-fill"
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EdgeSt {
    ReadWinner,
    AwaitWinner,
    ReadOwn,
    AwaitOwn,
    AwaitParentElem,
    AwaitParentWrite,
    AwaitSmallElem,
    AwaitSmallWrite,
    AwaitBigElem,
    AwaitBigWrite,
    Finished,
}

/// Leaf worker writing the winner slice's internal BST edges into the
/// main element arrays, one job per fat node: `parent`, `child_small` and
/// `child_big` pointers of the node's element.
///
/// Builders never CAS into a child slot whose fat subrange is non-empty
/// (they navigate those levels arithmetically), so these plain writes
/// cannot race with phase-1 insertions; conversely, slots whose fat
/// subrange is empty are left for the builders' CAS.
#[derive(Debug)]
pub struct FatEdgeWorker {
    ctx: WinnerContext,
    arrays: ElementArrays,
    pid: Pid,
    nodes: Vec<FatNodeInfo>,
    state: EdgeSt,
    winner: Word,
    node: usize,
    own: Word,
}

impl FatEdgeWorker {
    /// Creates the edge worker for `pid` over a fat tree of `m` nodes.
    pub fn new(fat: &FatTree, ctx: WinnerContext, arrays: ElementArrays, pid: Pid) -> Self {
        FatEdgeWorker {
            ctx,
            arrays,
            pid,
            nodes: fat.nodes(),
            state: EdgeSt::Finished,
            winner: 0,
            node: 0,
            own: 0,
        }
    }

    fn info(&self) -> FatNodeInfo {
        self.nodes[self.node]
    }

    /// After the parent pointer is handled, proceed to the SMALL edge,
    /// then the BIG edge, then finish.
    fn next_edge(&mut self) -> WorkerOp {
        if let Some(mid) = self.info().small_mid {
            self.state = EdgeSt::AwaitSmallElem;
            return WorkerOp::Op(Op::Read(self.ctx.slice_cell(self.winner, mid)));
        }
        self.next_big_edge()
    }

    fn next_big_edge(&mut self) -> WorkerOp {
        if let Some(mid) = self.info().big_mid {
            self.state = EdgeSt::AwaitBigElem;
            return WorkerOp::Op(Op::Read(self.ctx.slice_cell(self.winner, mid)));
        }
        self.state = EdgeSt::Finished;
        WorkerOp::Done
    }
}

impl LeafWorker for FatEdgeWorker {
    fn begin(&mut self, job: usize) {
        self.node = job;
        self.state = if self.winner == 0 {
            EdgeSt::ReadWinner
        } else {
            EdgeSt::ReadOwn
        };
    }

    fn step(&mut self, last: Option<OpResult>) -> WorkerOp {
        match self.state {
            EdgeSt::ReadWinner => {
                self.state = EdgeSt::AwaitWinner;
                WorkerOp::Op(Op::Read(self.ctx.result_of(self.pid)))
            }
            EdgeSt::AwaitWinner => {
                self.winner = last.expect("winner read pending").read_value();
                debug_assert!(self.winner >= 1);
                self.state = EdgeSt::AwaitOwn;
                WorkerOp::Op(Op::Read(
                    self.ctx.slice_cell(self.winner, self.info().cursor.mid()),
                ))
            }
            EdgeSt::ReadOwn => {
                self.state = EdgeSt::AwaitOwn;
                WorkerOp::Op(Op::Read(
                    self.ctx.slice_cell(self.winner, self.info().cursor.mid()),
                ))
            }
            EdgeSt::AwaitOwn => {
                self.own = last.expect("own elem pending").read_value();
                if let Some(pmid) = self.info().parent_mid {
                    self.state = EdgeSt::AwaitParentElem;
                    WorkerOp::Op(Op::Read(self.ctx.slice_cell(self.winner, pmid)))
                } else {
                    // The fat root is the global root: its parent pointer
                    // stays EMPTY, which is how the probing phases of
                    // §3.3 recognize the root.
                    self.next_edge()
                }
            }
            EdgeSt::AwaitParentElem => {
                let p = last.expect("parent elem pending").read_value();
                self.state = EdgeSt::AwaitParentWrite;
                WorkerOp::Op(Op::Write(self.arrays.parent(self.own as usize), p))
            }
            EdgeSt::AwaitParentWrite => self.next_edge(),
            EdgeSt::AwaitSmallElem => {
                let c = last.expect("small elem pending").read_value();
                self.state = EdgeSt::AwaitSmallWrite;
                WorkerOp::Op(Op::Write(
                    self.arrays.child(self.own as usize, Side::Small),
                    c,
                ))
            }
            EdgeSt::AwaitSmallWrite => self.next_big_edge(),
            EdgeSt::AwaitBigElem => {
                let c = last.expect("big elem pending").read_value();
                self.state = EdgeSt::AwaitBigWrite;
                WorkerOp::Op(Op::Write(
                    self.arrays.child(self.own as usize, Side::Big),
                    c,
                ))
            }
            EdgeSt::AwaitBigWrite => {
                self.state = EdgeSt::Finished;
                WorkerOp::Done
            }
            EdgeSt::Finished => WorkerOp::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_covers_slice_exactly_once() {
        for m in [1usize, 2, 3, 4, 7, 8, 16, 31] {
            let mut l = MemoryLayout::new();
            let fat = FatTree::layout(&mut l, m, 2);
            let nodes = fat.nodes();
            assert_eq!(nodes.len(), m, "m={m}");
            let mut mids: Vec<usize> = nodes.iter().map(|n| n.cursor.mid()).collect();
            mids.sort_unstable();
            assert_eq!(mids, (0..m).collect::<Vec<_>>(), "m={m}");
        }
    }

    #[test]
    fn cursor_children_partition_range() {
        let c = FatCursor::root(8); // covers 0..8, mid 4
        assert_eq!(c.mid(), 4);
        let s = c.child(Side::Small).unwrap();
        assert_eq!((s.lo, s.hi, s.h), (0, 4, 2));
        let b = c.child(Side::Big).unwrap();
        assert_eq!((b.lo, b.hi, b.h), (5, 8, 3));
    }

    #[test]
    fn single_node_has_no_children() {
        let c = FatCursor::root(1);
        assert_eq!(c.mid(), 0);
        assert!(c.child(Side::Small).is_none());
        assert!(c.child(Side::Big).is_none());
    }

    #[test]
    fn depth_is_logarithmic() {
        let mut l = MemoryLayout::new();
        let fat = FatTree::layout(&mut l, 16, 1);
        let max_h = fat.nodes().iter().map(|n| n.cursor.h).max().unwrap();
        // Heap slot of deepest node: depth = floor(log2 h) <= ceil(log2 m) + 1.
        assert!(max_h < 64, "tree too deep: max heap slot {max_h}");
    }

    #[test]
    fn node_cells_are_distinct() {
        let mut l = MemoryLayout::new();
        let fat = FatTree::layout(&mut l, 4, 3);
        let mut addrs = Vec::new();
        for n in fat.nodes() {
            for c in 0..3 {
                addrs.push(fat.key_at(n.cursor.h, c));
                addrs.push(fat.idx_at(n.cursor.h, c));
            }
        }
        let len = addrs.len();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), len);
    }

    #[test]
    fn parent_mids_consistent() {
        let mut l = MemoryLayout::new();
        let fat = FatTree::layout(&mut l, 8, 1);
        let nodes = fat.nodes();
        let root = nodes.iter().find(|n| n.cursor.h == 1).unwrap();
        assert_eq!(root.parent_mid, None);
        for n in &nodes {
            for (child_mid, _) in [(n.small_mid, 0), (n.big_mid, 1)] {
                if let Some(cm) = child_mid {
                    let child = nodes.iter().find(|x| x.cursor.mid() == cm).unwrap();
                    assert_eq!(child.parent_mid, Some(n.cursor.mid()));
                }
            }
        }
    }
}
