//! Orchestration of the full low-contention sort (§3.2–3.3).
//!
//! With `P = 4^k` processors over `N >= P` elements (`sqrt(P) | N`; the
//! paper presents `P = N`, "extending it to other cases is
//! straightforward"), every processor runs this chain without barriers:
//!
//! 1. **Group sort** — the `sqrt(P)` processors of group `g` sort the
//!    `N / sqrt(P)` elements of slice `g` with the deterministic
//!    algorithm of §2 into a sorted slice of element indices.
//! 2. **Winner selection** — Figure 9; each processor proposes its own
//!    (complete) group, so the selected slice is always fully sorted.
//! 3. **Fat-tree fill** — randomized write-most copies the winner slice
//!    into `sqrt(P)` duplicates per BST node.
//! 4. **Full build** — Figure 4 with the fat tree serving the top
//!    `log sqrt(P)` levels, plus edge jobs materializing the winner
//!    slice's internal BST edges; all under one WAT.
//!    5.–6. **Probing summation and placement** — §3.3.
//! 7. **Shuffle** — the final scatter under an LC-WAT.

use pram::{
    failure::FailurePlan, Machine, Pid, Process, Scheduler, SeqProcess, SyncScheduler, Word,
};
use wat::{LcWat, LcWatProcess, Wat, WatProcess, WinnerProcess, WinnerTree};

use crate::build::BuildTreeWorker;
use crate::layout::{ElementArrays, SortLayout};
use crate::place::FindPlaceProcess;
use crate::scatter::{ScatterMode, ScatterWorker};
use crate::sort::{SortError, SortOutcome};
use crate::sum::TreeSumProcess;

use super::fat_tree::{FatFillProcess, FatTree, WinnerContext};
use super::lc_build::FatBuildWorker;
use super::lc_place::LcPlaceProcess;
use super::lc_sum::{LcSumProcess, ProbeState};

/// Configuration of the low-contention sort.
#[derive(Clone, Copy, Debug)]
pub struct LowContentionConfig {
    /// Seed for arbitration and all randomized choices.
    pub seed: u64,
    /// Cycle budget; `None` derives one from `N`.
    pub max_cycles: Option<u64>,
    /// The `K` wait-unit of winner selection (Figure 9).
    pub winner_wait_unit: usize,
    /// Write-most rounds per processor (the paper uses `log P`).
    pub fill_rounds: Option<usize>,
    /// Duplicates per fat-tree node (the paper uses `sqrt(P)`). Ablation
    /// knob: fewer copies concentrate top-level reads on fewer cells.
    pub fat_copies: Option<usize>,
    /// Ablation knob: distribute the full-build jobs with the
    /// deterministic WAT instead of the LC-WAT the paper prescribes —
    /// reintroduces the `O(P)` convergence pile-up at the phase tail.
    pub deterministic_full_build: bool,
}

impl Default for LowContentionConfig {
    fn default() -> Self {
        LowContentionConfig {
            seed: 0x5eed,
            max_cycles: None,
            // Lemma 3.2 holds "for an appropriate constant K"; empirically
            // K = 4 is the threshold where winner-selection contention
            // drops to ~log P (see experiment E8's ablation).
            winner_wait_unit: 4,
            fill_rounds: None,
            fat_copies: None,
            deterministic_full_build: false,
        }
    }
}

/// Why the low-contention sorter rejected an input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LcSortError {
    /// The input length is not of the required `4^k, k >= 1` form.
    UnsupportedLength {
        /// The offending length.
        len: usize,
    },
    /// The underlying run failed.
    Sort(SortError),
}

impl std::fmt::Display for LcSortError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LcSortError::UnsupportedLength { len } => write!(
                f,
                "low-contention sort needs P = 4^k (k >= 1), P <= N, and sqrt(P) | N \
                 (P = N requires N = 4^k); got N = {len}"
            ),
            LcSortError::Sort(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for LcSortError {}

impl From<SortError> for LcSortError {
    fn from(e: SortError) -> Self {
        LcSortError::Sort(e)
    }
}

/// The low-contention wait-free sorter of §3: same asymptotic running
/// time as [`crate::PramSorter`], but `O(sqrt(P))` contention w.h.p.
/// instead of `O(P)`.
///
/// The paper presents the algorithm for `P = N` ("extending it to other
/// cases is straightforward"); we implement exactly that presentation, so
/// the input length must be `4^k` and `P = N`.
///
/// # Examples
///
/// ```
/// use wfsort::low_contention::LowContentionSorter;
/// use wfsort::Workload;
///
/// let keys = Workload::RandomPermutation.generate(64, 1);
/// let outcome = LowContentionSorter::default().sort(&keys)?;
/// assert!(outcome.sorted.windows(2).all(|w| w[0] <= w[1]));
/// # Ok::<(), wfsort::low_contention::LcSortError>(())
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct LowContentionSorter {
    config: LowContentionConfig,
    timeline: bool,
}

impl LowContentionSorter {
    /// Creates a sorter with the given configuration.
    pub fn new(config: LowContentionConfig) -> Self {
        LowContentionSorter {
            config,
            timeline: false,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &LowContentionConfig {
        &self.config
    }

    /// Whether `len` is a supported input length for the `P = N` entry
    /// point ([`LowContentionSorter::sort`]): `4^k`, `k >= 1`.
    pub fn supports_length(len: usize) -> bool {
        len >= 4 && len.is_power_of_two() && len.trailing_zeros().is_multiple_of(2)
    }

    /// Whether `(len, nprocs)` is supported by
    /// [`LowContentionSorter::sort_with_processors`]: `P = 4^k`
    /// (`k >= 1`), `P <= N`, and `sqrt(P)` divides `N` (so the `sqrt(P)`
    /// groups sort equal slices).
    pub fn supports(len: usize, nprocs: usize) -> bool {
        Self::supports_length(nprocs) && len >= nprocs && {
            let gp = 1usize << (nprocs.trailing_zeros() / 2);
            len.is_multiple_of(gp)
        }
    }

    /// Sorts `keys` on a faultless synchronous PRAM with `P = N` — the
    /// case the paper presents.
    ///
    /// # Errors
    ///
    /// [`LcSortError::UnsupportedLength`] if `keys.len()` is not `4^k`;
    /// [`LcSortError::Sort`] if the cycle budget is exhausted.
    pub fn sort(&self, keys: &[Word]) -> Result<SortOutcome, LcSortError> {
        self.sort_under(keys, &mut SyncScheduler, &FailurePlan::new())
    }

    /// Sorts with `P < N` processors — the paper's "extending it to
    /// other cases is straightforward" case: `sqrt(P)` groups of
    /// `sqrt(P)` processors each sort a slice of `N / sqrt(P)` elements,
    /// the winning slice fattens into the tree top, and the probing
    /// phases run with `P` probers over `N` nodes.
    ///
    /// # Errors
    ///
    /// [`LcSortError::UnsupportedLength`] if [`LowContentionSorter::supports`]
    /// rejects the combination; [`LcSortError::Sort`] on budget exhaustion.
    pub fn sort_with_processors(
        &self,
        keys: &[Word],
        nprocs: usize,
    ) -> Result<SortOutcome, LcSortError> {
        self.run(keys, nprocs, &mut SyncScheduler, &FailurePlan::new())
    }

    /// Sorts under an arbitrary scheduler and failure plan with `P = N`.
    ///
    /// # Errors
    ///
    /// As for [`LowContentionSorter::sort`].
    pub fn sort_under(
        &self,
        keys: &[Word],
        scheduler: &mut dyn Scheduler,
        failures: &FailurePlan,
    ) -> Result<SortOutcome, LcSortError> {
        self.run(keys, keys.len(), scheduler, failures)
    }

    /// Like [`LowContentionSorter::sort`], but records the per-cycle
    /// contention series into the outcome's
    /// [`pram::Metrics::timeline`] (used by experiment E18's figure).
    ///
    /// # Errors
    ///
    /// As for [`LowContentionSorter::sort`].
    pub fn sort_with_timeline(&self, keys: &[Word]) -> Result<SortOutcome, LcSortError> {
        let mut me = *self;
        me.timeline = true;
        me.run(keys, keys.len(), &mut SyncScheduler, &FailurePlan::new())
    }

    fn run(
        &self,
        keys: &[Word],
        nprocs: usize,
        scheduler: &mut dyn Scheduler,
        failures: &FailurePlan,
    ) -> Result<SortOutcome, LcSortError> {
        if !Self::supports(keys.len(), nprocs) {
            return Err(LcSortError::UnsupportedLength { len: keys.len() });
        }
        let n = keys.len();
        let p = nprocs;
        let gp = 1usize << (p.trailing_zeros() / 2); // sqrt(P): group size & fat copies
        let groups = gp;
        let sl = n / groups; // slice length per group
        let seed = self.config.seed;
        let log_p = p.trailing_zeros() as usize;
        let fill_rounds = self.config.fill_rounds.unwrap_or(2 * log_p.max(1));

        let mut memlayout = pram::MemoryLayout::new();
        let layout = SortLayout::layout(&mut memlayout, n);
        // Scratch fields for the group phase (same keys, own tree fields).
        let scratch = ElementArrays::layout(&mut memlayout, n).sharing_keys_of(&layout.elems);
        // Per-group WATs and the concatenated sorted slices.
        let group_build: Vec<Wat> = (0..groups)
            .map(|_| Wat::layout(&mut memlayout, sl - 1))
            .collect();
        let group_scatter: Vec<Wat> = (0..groups)
            .map(|_| Wat::layout(&mut memlayout, sl))
            .collect();
        let slices = memlayout.region(n);
        let winner_tree = WinnerTree::layout(&mut memlayout, p);
        let copies = self.config.fat_copies.unwrap_or(gp).max(1);
        let fat = FatTree::layout(&mut memlayout, sl, copies);
        let ctx = WinnerContext {
            results: winner_tree.results_region(),
            slices,
            m: sl,
        };
        // Full build: n insert jobs + sl edge jobs, distributed by an
        // LC-WAT — §3.2 "we assume that work is distributed using
        // LC-WATs"; a deterministic WAT herds every processor into the
        // last unfinished subtree (O(P) contention at the tail), which
        // the `deterministic_full_build` ablation makes measurable.
        let full_build = LcWat::layout(&mut memlayout, n + sl);
        let full_build_det = Wat::layout(&mut memlayout, n + sl);
        let sum_state = ProbeState::layout(&mut memlayout, n);
        let place_state = ProbeState::layout(&mut memlayout, n);
        let scatter_lcwat = LcWat::layout(&mut memlayout, n);

        let mut machine = Machine::with_seed(memlayout.total(), seed);
        machine.record_timeline(self.timeline);
        layout.elems.load_keys(machine.memory_mut(), keys);

        for i in 0..p {
            let pid = Pid::new(i);
            let g = i / gp;
            let local = Pid::new(i % gp);
            let slice_root = g * sl + 1;
            let slice_region = {
                // Group g's slice: a window of `slices`.
                let base = slices.at(g * sl);
                pram::Region::window(base, sl)
            };
            let stages: Vec<Box<dyn Process>> = vec![
                // 1. group sort (build, sum, place, scatter indices).
                Box::new(WatProcess::new(
                    group_build[g],
                    local,
                    gp,
                    BuildTreeWorker::new(scratch, slice_root, slice_root + 1),
                )),
                Box::new(TreeSumProcess::new(scratch, pid, slice_root)),
                Box::new(FindPlaceProcess::new(scratch, pid, slice_root)),
                Box::new(WatProcess::new(
                    group_scatter[g],
                    local,
                    gp,
                    ScatterWorker::new(scratch, slice_region, slice_root, ScatterMode::Indices),
                )),
                // 2. winner selection: propose the (complete) own group.
                Box::new(WinnerProcess::new(
                    winner_tree,
                    pid,
                    g as Word + 1,
                    self.config.winner_wait_unit,
                    seed,
                )),
                // 3. fat-tree fill.
                Box::new(FatFillProcess::new(
                    fat,
                    ctx,
                    layout.elems,
                    pid,
                    fill_rounds,
                    seed,
                )),
                // 4. full build with fat top.
                if self.config.deterministic_full_build {
                    Box::new(WatProcess::new(
                        full_build_det,
                        pid,
                        p,
                        FatBuildWorker::new(layout.elems, fat, ctx, pid, n, seed),
                    )) as Box<dyn Process>
                } else {
                    Box::new(LcWatProcess::new(
                        full_build,
                        pid,
                        seed,
                        FatBuildWorker::new(layout.elems, fat, ctx, pid, n, seed),
                    ))
                },
                // 5.-6. probing phases.
                Box::new(LcSumProcess::new(layout.elems, sum_state, pid, n, seed)),
                Box::new(LcPlaceProcess::new(layout.elems, place_state, pid, n, seed)),
                // 7. final shuffle under an LC-WAT.
                Box::new(LcWatProcess::new(
                    scatter_lcwat,
                    pid,
                    seed,
                    ScatterWorker::new(layout.elems, layout.output, 1, ScatterMode::Keys),
                )),
            ];
            machine.add_process(Box::new(SeqProcess::new(stages)));
        }

        let budget = self
            .config
            .max_cycles
            .unwrap_or_else(|| 500_000 + 64 * (n as u64) * (n as u64));
        let report = machine
            .run_with_failures(scheduler, failures, budget)
            .map_err(SortError::from)?;
        Ok(SortOutcome {
            sorted: layout.read_output(machine.memory()),
            report,
        })
    }
}
