//! Low-contention placement (§3.3).
//!
//! Random probing again, with the three information waves the paper
//! describes: *place* values written going down the tree (a node's place
//! follows from its parent's place and a child subtree size), *DONE*
//! marks propagating up once a node's subtree is fully placed, and
//! finally *ALLDONE* spreading back down to release the processors.
//!
//! Place arithmetic (§2.2, corrected for the dropped `- 1` in the
//! scanned text; verified by the `sub`-accumulator form of Figure 6):
//!
//! * root: `place = size(small child) + 1`
//! * small child `i` of `p`: `place(i) = place(p) - size(big child of i) - 1`
//! * big child `i` of `p`: `place(i) = place(p) + size(small child of i) + 1`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pram::{Op, OpResult, Pid, Process, Word};

use crate::layout::{ElementArrays, Side, EMPTY};

use super::lc_sum::{ProbeState, ALLDONE};

/// State value: the node's subtree is fully placed.
pub const DONE: Word = 1;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum St {
    Pick,
    AwaitState,
    AwaitPlace,
    // Computing a place.
    AwaitParent,
    AwaitParentPlace,
    AwaitParentSmall,
    AwaitOwnChild,
    AwaitOwnChildSize,
    AwaitPlaceWrite,
    // Completion check.
    AwaitCheckSmall,
    AwaitCheckSmallState,
    AwaitCheckBig,
    AwaitCheckBigState,
    AwaitDoneParent,
    AwaitDoneWrite,
    // ALLDONE flood.
    FloodSmall,
    AwaitFloodSmallPtr,
    AwaitFloodSmallWrite,
    AwaitFloodBigPtr,
    AwaitFloodBigWrite,
}

/// One processor probing the pivot tree until all places are computed.
#[derive(Debug)]
pub struct LcPlaceProcess {
    arrays: ElementArrays,
    state_arr: ProbeState,
    n: usize,
    rng: StdRng,
    state: St,
    node: usize,
    parent: usize,
    parent_place: Word,
    /// Whether `node` is its parent's SMALL child.
    is_small: bool,
}

impl LcPlaceProcess {
    /// Creates the probing placement process for `pid` over `n` elements.
    /// `state_arr` must be a fresh [`ProbeState`], distinct from the one
    /// used by the summation phase.
    pub fn new(
        arrays: ElementArrays,
        state_arr: ProbeState,
        pid: Pid,
        n: usize,
        seed: u64,
    ) -> Self {
        LcPlaceProcess {
            arrays,
            state_arr,
            n,
            rng: StdRng::seed_from_u64(
                seed ^ (pid.index() as u64).wrapping_mul(0x27D4_EB2F_1656_67C5),
            ),
            state: St::Pick,
            node: 0,
            parent: 0,
            parent_place: 0,
            is_small: false,
        }
    }
}

impl Process for LcPlaceProcess {
    fn step(&mut self, mut last: Option<OpResult>) -> Op {
        loop {
            match self.state {
                St::Pick => {
                    self.node = 1 + self.rng.gen_range(0..self.n);
                    self.state = St::AwaitState;
                    return Op::Read(self.state_arr.at(self.node));
                }
                St::AwaitState => {
                    let v = last.take().expect("state pending").read_value();
                    match v {
                        x if x == ALLDONE => {
                            self.state = St::FloodSmall;
                        }
                        x if x == DONE => self.state = St::Pick,
                        _ => {
                            self.state = St::AwaitPlace;
                            return Op::Read(self.arrays.place(self.node));
                        }
                    }
                }
                St::AwaitPlace => {
                    let v = last.take().expect("place pending").read_value();
                    if v > 0 {
                        // Place known; see if the subtree below is done.
                        self.state = St::AwaitCheckSmall;
                        return Op::Read(self.arrays.child(self.node, Side::Small));
                    }
                    self.state = St::AwaitParent;
                    return Op::Read(self.arrays.parent(self.node));
                }
                St::AwaitParent => {
                    self.parent = last.take().expect("parent pending").read_value() as usize;
                    if self.parent == 0 {
                        // The root (EMPTY parent): place = size(small
                        // subtree) + 1.
                        self.parent_place = 0;
                        self.is_small = false; // root uses +: place = 0 + s + 1
                        self.state = St::AwaitOwnChild;
                        return Op::Read(self.arrays.child(self.node, Side::Small));
                    }
                    self.state = St::AwaitParentPlace;
                    return Op::Read(self.arrays.place(self.parent));
                }
                St::AwaitParentPlace => {
                    let v = last.take().expect("parent place pending").read_value();
                    if v == 0 {
                        // Parent not placed yet; probe elsewhere.
                        self.state = St::Pick;
                        continue;
                    }
                    self.parent_place = v;
                    self.state = St::AwaitParentSmall;
                    return Op::Read(self.arrays.child(self.parent, Side::Small));
                }
                St::AwaitParentSmall => {
                    let c = last.take().expect("parent small pending").read_value();
                    self.is_small = c == self.node as Word;
                    // A small child subtracts the size of its BIG subtree;
                    // a big child adds the size of its SMALL subtree.
                    let side = if self.is_small {
                        Side::Big
                    } else {
                        Side::Small
                    };
                    self.state = St::AwaitOwnChild;
                    return Op::Read(self.arrays.child(self.node, side));
                }
                St::AwaitOwnChild => {
                    let c = last.take().expect("own child pending").read_value();
                    if c != EMPTY {
                        self.state = St::AwaitOwnChildSize;
                        return Op::Read(self.arrays.size(c as usize));
                    }
                    self.state = St::AwaitPlaceWrite;
                    return Op::Write(self.arrays.place(self.node), self.place_value(0));
                }
                St::AwaitOwnChildSize => {
                    let s = last.take().expect("child size pending").read_value();
                    self.state = St::AwaitPlaceWrite;
                    return Op::Write(self.arrays.place(self.node), self.place_value(s));
                }
                St::AwaitPlaceWrite => {
                    last.take();
                    self.state = St::Pick;
                }
                St::AwaitCheckSmall => {
                    let c = last.take().expect("check small pending").read_value();
                    if c != EMPTY {
                        self.state = St::AwaitCheckSmallState;
                        return Op::Read(self.state_arr.at(c as usize));
                    }
                    self.state = St::AwaitCheckBig;
                    return Op::Read(self.arrays.child(self.node, Side::Big));
                }
                St::AwaitCheckSmallState => {
                    let v = last.take().expect("small state pending").read_value();
                    if v < DONE {
                        self.state = St::Pick;
                        continue;
                    }
                    self.state = St::AwaitCheckBig;
                    return Op::Read(self.arrays.child(self.node, Side::Big));
                }
                St::AwaitCheckBig => {
                    let c = last.take().expect("check big pending").read_value();
                    if c != EMPTY {
                        self.state = St::AwaitCheckBigState;
                        return Op::Read(self.state_arr.at(c as usize));
                    }
                    self.state = St::AwaitDoneParent;
                    return Op::Read(self.arrays.parent(self.node));
                }
                St::AwaitCheckBigState => {
                    let v = last.take().expect("big state pending").read_value();
                    if v < DONE {
                        self.state = St::Pick;
                        continue;
                    }
                    // One more random-cell read to learn whether this is
                    // the root (EMPTY parent) — never a shared root cell.
                    self.state = St::AwaitDoneParent;
                    return Op::Read(self.arrays.parent(self.node));
                }
                St::AwaitDoneParent => {
                    let p = last.take().expect("done parent pending").read_value();
                    let value = if p == EMPTY { ALLDONE } else { DONE };
                    self.state = St::AwaitDoneWrite;
                    return Op::Write(self.state_arr.at(self.node), value);
                }
                St::AwaitDoneWrite => {
                    last.take();
                    self.state = St::Pick;
                }
                St::FloodSmall => {
                    self.state = St::AwaitFloodSmallPtr;
                    return Op::Read(self.arrays.child(self.node, Side::Small));
                }
                St::AwaitFloodSmallPtr => {
                    let c = last.take().expect("flood small pending").read_value();
                    if c != EMPTY {
                        self.state = St::AwaitFloodSmallWrite;
                        return Op::Write(self.state_arr.at(c as usize), ALLDONE);
                    }
                    self.state = St::AwaitFloodBigPtr;
                    return Op::Read(self.arrays.child(self.node, Side::Big));
                }
                St::AwaitFloodSmallWrite => {
                    last.take();
                    self.state = St::AwaitFloodBigPtr;
                    return Op::Read(self.arrays.child(self.node, Side::Big));
                }
                St::AwaitFloodBigPtr => {
                    let c = last.take().expect("flood big pending").read_value();
                    if c != EMPTY {
                        self.state = St::AwaitFloodBigWrite;
                        return Op::Write(self.state_arr.at(c as usize), ALLDONE);
                    }
                    return Op::Halt;
                }
                St::AwaitFloodBigWrite => {
                    last.take();
                    return Op::Halt;
                }
            }
        }
    }

    fn label(&self) -> &'static str {
        "lc-place"
    }
}

impl LcPlaceProcess {
    /// The place of `node` given the relevant child-subtree size `s`.
    fn place_value(&self, s: Word) -> Word {
        if self.parent == 0 {
            // Root.
            s + 1
        } else if self.is_small {
            self.parent_place - s - 1
        } else {
            self.parent_place + s + 1
        }
    }
}
