//! Low-contention tree summation (§3.3).
//!
//! Follows the LC-WAT blueprint of Figure 8, transplanted onto the
//! (irregular) Quicksort tree: processors probe uniformly random
//! *elements*; a probed node whose children are both summed gets its size
//! written (`size > 0` is the completion marker, as in phase 2); the
//! processor that completes the root writes an `ALLDONE` marker that
//! floods down, telling probers to quit. Each probe costs `O(1)`
//! operations against cells chosen uniformly at random, which is what
//! bounds contention (Lemma 3.3 reduces to Lemma 3.1) — in particular,
//! the root is recognized by its `EMPTY` parent pointer on the *probed*
//! node, never by consulting any shared "root id" cell that all `P`
//! processors would hammer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pram::{MemoryLayout, Op, OpResult, Pid, Process, Region, Word};

use crate::layout::{ElementArrays, Side, EMPTY};

/// Marker value in the state array: all summation work is complete.
pub const ALLDONE: Word = 2;

/// Shared state cells for the probing phases: one per element.
#[derive(Clone, Copy, Debug)]
pub struct ProbeState {
    cells: Region,
}

impl ProbeState {
    /// Reserves a state array for `n` elements (1-based, cell 0 unused).
    pub fn layout(layout: &mut MemoryLayout, n: usize) -> Self {
        ProbeState {
            cells: layout.region(n + 1),
        }
    }

    /// Address of element `i`'s state cell.
    pub fn at(&self, i: usize) -> pram::Addr {
        self.cells.at(i)
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum St {
    Pick,
    AwaitState,
    AwaitSize,
    AwaitSmall,
    AwaitSmallSize,
    AwaitBig,
    AwaitBigSize,
    AwaitParent,
    AwaitSizeWrite,
    AwaitAllDoneWrite,
    FloodSmall,
    AwaitFloodSmallPtr,
    AwaitFloodSmallWrite,
    AwaitFloodBigPtr,
    AwaitFloodBigWrite,
}

/// One processor probing the pivot tree until sizes are complete.
#[derive(Debug)]
pub struct LcSumProcess {
    arrays: ElementArrays,
    state_arr: ProbeState,
    n: usize,
    rng: StdRng,
    state: St,
    node: usize,
    s_small: Word,
    total: Word,
    is_root: bool,
}

impl LcSumProcess {
    /// Creates the probing summation process for `pid` over `n` elements.
    pub fn new(
        arrays: ElementArrays,
        state_arr: ProbeState,
        pid: Pid,
        n: usize,
        seed: u64,
    ) -> Self {
        LcSumProcess {
            arrays,
            state_arr,
            n,
            rng: StdRng::seed_from_u64(
                seed ^ (pid.index() as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
            ),
            state: St::Pick,
            node: 0,
            s_small: 0,
            total: 0,
            is_root: false,
        }
    }
}

impl Process for LcSumProcess {
    fn step(&mut self, mut last: Option<OpResult>) -> Op {
        loop {
            match self.state {
                St::Pick => {
                    self.node = 1 + self.rng.gen_range(0..self.n);
                    self.state = St::AwaitState;
                    return Op::Read(self.state_arr.at(self.node));
                }
                St::AwaitState => {
                    let v = last.take().expect("state pending").read_value();
                    if v == ALLDONE {
                        self.state = St::FloodSmall;
                        continue;
                    }
                    self.state = St::AwaitSize;
                    return Op::Read(self.arrays.size(self.node));
                }
                St::AwaitSize => {
                    let v = last.take().expect("size pending").read_value();
                    if v > 0 {
                        self.state = St::Pick;
                        continue;
                    }
                    self.state = St::AwaitSmall;
                    return Op::Read(self.arrays.child(self.node, Side::Small));
                }
                St::AwaitSmall => {
                    let small = last.take().expect("small pending").read_value();
                    if small != EMPTY {
                        self.state = St::AwaitSmallSize;
                        return Op::Read(self.arrays.size(small as usize));
                    }
                    self.s_small = 0;
                    self.state = St::AwaitBig;
                    return Op::Read(self.arrays.child(self.node, Side::Big));
                }
                St::AwaitSmallSize => {
                    let v = last.take().expect("small size pending").read_value();
                    if v == 0 {
                        // Child not summed yet; try elsewhere.
                        self.state = St::Pick;
                        continue;
                    }
                    self.s_small = v;
                    self.state = St::AwaitBig;
                    return Op::Read(self.arrays.child(self.node, Side::Big));
                }
                St::AwaitBig => {
                    let big = last.take().expect("big pending").read_value();
                    if big != EMPTY {
                        self.state = St::AwaitBigSize;
                        return Op::Read(self.arrays.size(big as usize));
                    }
                    self.total = self.s_small + 1;
                    self.state = St::AwaitParent;
                    return Op::Read(self.arrays.parent(self.node));
                }
                St::AwaitBigSize => {
                    let v = last.take().expect("big size pending").read_value();
                    if v == 0 {
                        self.state = St::Pick;
                        continue;
                    }
                    self.total = self.s_small + v + 1;
                    self.state = St::AwaitParent;
                    return Op::Read(self.arrays.parent(self.node));
                }
                St::AwaitParent => {
                    // Root detection without a shared root cell: only the
                    // global root has an EMPTY parent pointer.
                    let p = last.take().expect("parent pending").read_value();
                    self.is_root = p == EMPTY;
                    self.state = St::AwaitSizeWrite;
                    return Op::Write(self.arrays.size(self.node), self.total);
                }
                St::AwaitSizeWrite => {
                    last.take();
                    if self.is_root {
                        self.state = St::AwaitAllDoneWrite;
                        return Op::Write(self.state_arr.at(self.node), ALLDONE);
                    }
                    self.state = St::Pick;
                }
                St::AwaitAllDoneWrite => {
                    last.take();
                    self.state = St::Pick;
                }
                St::FloodSmall => {
                    self.state = St::AwaitFloodSmallPtr;
                    return Op::Read(self.arrays.child(self.node, Side::Small));
                }
                St::AwaitFloodSmallPtr => {
                    let c = last.take().expect("flood small pending").read_value();
                    if c != EMPTY {
                        self.state = St::AwaitFloodSmallWrite;
                        return Op::Write(self.state_arr.at(c as usize), ALLDONE);
                    }
                    self.state = St::AwaitFloodBigPtr;
                    return Op::Read(self.arrays.child(self.node, Side::Big));
                }
                St::AwaitFloodSmallWrite => {
                    last.take();
                    self.state = St::AwaitFloodBigPtr;
                    return Op::Read(self.arrays.child(self.node, Side::Big));
                }
                St::AwaitFloodBigPtr => {
                    let c = last.take().expect("flood big pending").read_value();
                    if c != EMPTY {
                        self.state = St::AwaitFloodBigWrite;
                        return Op::Write(self.state_arr.at(c as usize), ALLDONE);
                    }
                    return Op::Halt;
                }
                St::AwaitFloodBigWrite => {
                    last.take();
                    return Op::Halt;
                }
            }
        }
    }

    fn label(&self) -> &'static str {
        "lc-sum"
    }
}
