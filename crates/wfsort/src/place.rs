//! Phase 3: computing every element's sorted rank (Figure 6).
//!
//! Ranks flow top-down: the root's place is the size of its `SMALL`
//! subtree plus one, and each child's place follows from its parent's
//! (`place = s + sub + 1`, where `sub` accumulates the count of elements
//! known to sort before the subtree and `s` is the size of the node's
//! `SMALL` subtree). Processors spread by PID bits as in phase 2.
//!
//! ## Crash-window fix (documented in DESIGN.md §5)
//!
//! Figure 6 as printed skips a node as soon as its `place` is non-zero.
//! `place` is written *before* the children are visited, so a processor
//! that crashes in that window would leave a subtree whose places no
//! surviving processor will ever compute — the skip hides it from
//! everyone. We restore the claimed fault tolerance by mirroring phase
//! 2's discipline: a separate `place_done` flag is written in postorder,
//! *after* the subtree is fully placed, and only that flag short-circuits
//! traversal. A node with `place` set but `place_done` clear is
//! re-entered (recomputing the same deterministic values — a benign
//! race), costing `O(1)` extra operations per node and no asymptotic
//! change to Lemma 2.6.

use pram::{Op, OpResult, Pid, Process, Word};

use crate::layout::{ElementArrays, Side, EMPTY};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stage {
    Enter,
    AwaitDone,
    AwaitPlace,
    AwaitSmallChild,
    AwaitSmallSize,
    WritePlace,
    AwaitPlaceWrite,
    ReadBig,
    AwaitBig,
    Recurse1,
    Recurse2,
    MarkDone,
    AwaitMark,
}

#[derive(Clone, Copy, Debug)]
struct Frame {
    node: usize,
    sub: Word,
    depth: u32,
    stage: Stage,
    /// `place[node]` as read on entry (0 if not yet computed).
    place_seen: Word,
    /// Size of the node's SMALL subtree.
    s: Word,
    small_child: usize,
    big_child: usize,
}

/// One processor executing `find_place(root, 0, 0)` (Figure 6, with the
/// postorder completion flag described in the module docs).
#[derive(Debug)]
pub struct FindPlaceProcess {
    arrays: ElementArrays,
    pid: Pid,
    stack: Vec<Frame>,
    started: bool,
    root: usize,
    /// `true` = run Figure 6 exactly as printed (skip on `place > 0`, no
    /// postorder flag). Exists to *demonstrate* the crash-window defect;
    /// see [`FindPlaceProcess::faithful_figure6`].
    faithful: bool,
}

impl FindPlaceProcess {
    /// Creates the placement process for `pid` over the tree rooted at
    /// `root`. Requires phase 2 sizes to be complete, which holds because
    /// a processor only leaves phase 2 after its `tree_sum(root)` returns.
    pub fn new(arrays: ElementArrays, pid: Pid, root: usize) -> Self {
        FindPlaceProcess {
            arrays,
            pid,
            stack: Vec::new(),
            started: false,
            root,
            faithful: false,
        }
    }

    /// Creates the process running Figure 6 **exactly as printed**: a
    /// node is skipped as soon as its `place` is non-zero, and no
    /// postorder completion flag exists.
    ///
    /// This variant is *not* crash-tolerant: a processor dying between
    /// writing a node's `place` and visiting its children hides the
    /// subtree from every survivor (they skip on `place > 0`), leaving
    /// its places uncomputed forever. The test
    /// `faithful_figure6_loses_subtrees_under_crashes` exhibits the
    /// defect; production callers should use [`FindPlaceProcess::new`].
    pub fn faithful_figure6(arrays: ElementArrays, pid: Pid, root: usize) -> Self {
        FindPlaceProcess {
            faithful: true,
            ..Self::new(arrays, pid, root)
        }
    }

    fn push(&mut self, node: usize, sub: Word, depth: u32) {
        self.stack.push(Frame {
            node,
            sub,
            depth,
            stage: Stage::Enter,
            place_seen: 0,
            s: 0,
            small_child: 0,
            big_child: 0,
        });
    }

    /// Children in the order this processor visits them (Figure 6: bit
    /// `d` of the PID decides whether the SMALL or BIG subtree is walked
    /// first), paired with each child's `sub` accumulator.
    fn visit_order(frame: &Frame, pid: Pid) -> [(usize, Word); 2] {
        let small = (frame.small_child, frame.sub);
        let big = (frame.big_child, frame.sub + frame.s + 1);
        if Side::from_bit(pid.bit(frame.depth)) == Side::Small {
            [small, big]
        } else {
            [big, small]
        }
    }
}

impl Process for FindPlaceProcess {
    fn step(&mut self, mut last: Option<OpResult>) -> Op {
        if !self.started {
            self.started = true;
            self.push(self.root, 0, 0);
        }
        loop {
            let Some(frame) = self.stack.last_mut() else {
                return Op::Halt;
            };
            match frame.stage {
                Stage::Enter => {
                    if self.faithful {
                        // Figure 6 verbatim: the skip is keyed on `place`
                        // itself (the crash-unsafe check).
                        frame.stage = Stage::AwaitPlace;
                        return Op::Read(self.arrays.place(frame.node));
                    }
                    frame.stage = Stage::AwaitDone;
                    return Op::Read(self.arrays.place_done(frame.node));
                }
                Stage::AwaitDone => {
                    let v = last.take().expect("done read pending").read_value();
                    if v != 0 {
                        self.stack.pop();
                        continue;
                    }
                    frame.stage = Stage::AwaitPlace;
                    return Op::Read(self.arrays.place(frame.node));
                }
                Stage::AwaitPlace => {
                    frame.place_seen = last.take().expect("place read pending").read_value();
                    if self.faithful && frame.place_seen > 0 {
                        // Figure 6 line 2: "if ... A[i].place > 0 then
                        // return" — the skip that loses subtrees when the
                        // placing processor crashed before recursing.
                        self.stack.pop();
                        continue;
                    }
                    frame.stage = Stage::AwaitSmallChild;
                    return Op::Read(self.arrays.child(frame.node, Side::Small));
                }
                Stage::AwaitSmallChild => {
                    let sc = last.take().expect("small child pending").read_value();
                    frame.small_child = sc as usize;
                    if frame.place_seen > 0 {
                        // Place already computed: recover `s` arithmetically
                        // (place = s + sub + 1) instead of re-reading sizes.
                        frame.s = frame.place_seen - frame.sub - 1;
                        frame.stage = Stage::ReadBig;
                        continue;
                    }
                    if sc == EMPTY {
                        frame.s = 0;
                        frame.stage = Stage::WritePlace;
                        continue;
                    }
                    frame.stage = Stage::AwaitSmallSize;
                    return Op::Read(self.arrays.size(sc as usize));
                }
                Stage::AwaitSmallSize => {
                    frame.s = last.take().expect("size read pending").read_value();
                    frame.stage = Stage::WritePlace;
                }
                Stage::WritePlace => {
                    let place = frame.s + frame.sub + 1;
                    let node = frame.node;
                    frame.stage = Stage::AwaitPlaceWrite;
                    return Op::Write(self.arrays.place(node), place);
                }
                Stage::AwaitPlaceWrite => {
                    last.take();
                    frame.stage = Stage::ReadBig;
                }
                Stage::ReadBig => {
                    frame.stage = Stage::AwaitBig;
                    return Op::Read(self.arrays.child(frame.node, Side::Big));
                }
                Stage::AwaitBig => {
                    frame.big_child = last.take().expect("big child pending").read_value() as usize;
                    frame.stage = Stage::Recurse1;
                }
                Stage::Recurse1 => {
                    let (child, sub) = Self::visit_order(frame, self.pid)[0];
                    frame.stage = Stage::Recurse2;
                    if child != 0 {
                        let depth = frame.depth + 1;
                        self.push(child, sub, depth);
                    }
                }
                Stage::Recurse2 => {
                    let (child, sub) = Self::visit_order(frame, self.pid)[1];
                    frame.stage = if self.faithful {
                        // No postorder flag in the verbatim routine.
                        Stage::AwaitMark // reached only via the pop below
                    } else {
                        Stage::MarkDone
                    };
                    let faithful = self.faithful;
                    if child != 0 {
                        let depth = frame.depth + 1;
                        self.push(child, sub, depth);
                        continue;
                    }
                    if faithful {
                        self.stack.pop();
                    }
                }
                Stage::MarkDone => {
                    let node = frame.node;
                    frame.stage = Stage::AwaitMark;
                    return Op::Write(self.arrays.place_done(node), 1);
                }
                Stage::AwaitMark => {
                    last.take();
                    self.stack.pop();
                }
            }
        }
    }

    fn label(&self) -> &'static str {
        "find-place"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sum::TreeSumProcess;
    use pram::{Machine, SyncScheduler};

    /// Loads a tree, runs phase 2 then phase 3 (chained per processor as
    /// in the real sort), and returns the machine.
    fn run_phases(keys: &[Word], nprocs: usize) -> (Machine, ElementArrays) {
        let (mut machine, arrays) = crate::sum::tests::machine_with_tree(keys, 13);
        for i in 0..nprocs {
            let pid = Pid::new(i);
            machine.add_process(Box::new(pram::SeqProcess::new(vec![
                Box::new(TreeSumProcess::new(arrays, pid, 1)),
                Box::new(FindPlaceProcess::new(arrays, pid, 1)),
            ])));
        }
        machine.run(&mut SyncScheduler, 10_000_000).unwrap();
        (machine, arrays)
    }

    fn assert_places_are_ranks(machine: &Machine, arrays: &ElementArrays, keys: &[Word]) {
        let mem = machine.memory();
        let n = keys.len();
        // Rank of element i among (key, index) pairs.
        let mut order: Vec<usize> = (1..=n).collect();
        order.sort_by_key(|&i| (keys[i - 1], i));
        for (rank0, &elem) in order.iter().enumerate() {
            assert_eq!(
                mem.read(arrays.place(elem)),
                rank0 as Word + 1,
                "element {elem} (key {}) has wrong place",
                keys[elem - 1]
            );
            assert_eq!(mem.read(arrays.place_done(elem)), 1);
        }
    }

    #[test]
    fn places_random_tree_single_processor() {
        let keys: Vec<Word> = (0..31).map(|i| (i * 17) % 31).collect();
        let (m, a) = run_phases(&keys, 1);
        assert_places_are_ranks(&m, &a, &keys);
    }

    #[test]
    fn places_random_tree_many_processors() {
        let keys: Vec<Word> = (0..64).map(|i| (i * 29) % 64).collect();
        let (m, a) = run_phases(&keys, 64);
        assert_places_are_ranks(&m, &a, &keys);
    }

    #[test]
    fn places_duplicate_keys() {
        let keys = vec![3, 1, 3, 1, 2, 2, 3, 1];
        let (m, a) = run_phases(&keys, 4);
        assert_places_are_ranks(&m, &a, &keys);
    }

    #[test]
    fn places_degenerate_spine() {
        let keys: Vec<Word> = (0..16).collect();
        let (m, a) = run_phases(&keys, 3);
        assert_places_are_ranks(&m, &a, &keys);
    }

    #[test]
    fn places_single_element() {
        let (m, a) = run_phases(&[9], 2);
        assert_eq!(m.memory().read(a.place(1)), 1);
    }

    #[test]
    fn crash_between_place_write_and_recursion_is_survivable() {
        // The scenario that breaks unmodified Figure 6: a processor
        // crashes mid-phase-3. With the postorder flag, survivors finish
        // everything. Crash processor 0 at many different cycles to sweep
        // the window.
        let keys: Vec<Word> = (0..32).map(|i| (i * 19) % 32).collect();
        for crash_cycle in (0..120).step_by(7) {
            let (mut machine, arrays) = crate::sum::tests::machine_with_tree(&keys, 21);
            for i in 0..3 {
                let pid = Pid::new(i);
                machine.add_process(Box::new(pram::SeqProcess::new(vec![
                    Box::new(TreeSumProcess::new(arrays, pid, 1)),
                    Box::new(FindPlaceProcess::new(arrays, pid, 1)),
                ])));
            }
            let plan = pram::failure::FailurePlan::new().crash_at(crash_cycle, Pid::new(0));
            machine
                .run_with_failures(&mut SyncScheduler, &plan, 10_000_000)
                .unwrap();
            assert_places_are_ranks(&machine, &arrays, &keys);
        }
    }

    #[test]
    fn faithful_figure6_loses_subtrees_under_crashes() {
        // Reproduction of the defect the fixed variant exists for. The
        // adversary runs processor 0 alone through phases 2–3, crashes it
        // mid-placement, then lets processor 1 take over. Under the
        // verbatim Figure 6, processor 1 reads the root's (or some
        // ancestor's) non-zero `place`, skips, and the victim's
        // half-placed subtrees are lost forever; with the postorder flag
        // processor 1 re-enters them and finishes. We sweep the crash
        // over every cycle of the run and count losses.
        let keys: Vec<Word> = (0..32).map(|i| (i * 19) % 32).collect();
        let sweep = |faithful: bool| -> (usize, usize) {
            let mut incomplete = 0;
            let mut total = 0;
            for crash_cycle in 1..400 {
                let (mut machine, arrays) = crate::sum::tests::machine_with_tree(&keys, 21);
                for i in 0..2 {
                    let pid = Pid::new(i);
                    let place: Box<dyn pram::Process> = if faithful {
                        Box::new(FindPlaceProcess::faithful_figure6(arrays, pid, 1))
                    } else {
                        Box::new(FindPlaceProcess::new(arrays, pid, 1))
                    };
                    machine.add_process(Box::new(pram::SeqProcess::new(vec![
                        Box::new(TreeSumProcess::new(arrays, pid, 1)),
                        place,
                    ])));
                }
                // Victim-first schedule: only processor 0 runs while
                // runnable and uncrashed; processor 1 runs otherwise.
                let mut victim_first = pram::AdversaryScheduler::new(|_c, runnable: &[Pid]| {
                    if runnable.contains(&Pid::new(0)) {
                        vec![Pid::new(0)]
                    } else {
                        runnable.to_vec()
                    }
                });
                let plan = pram::failure::FailurePlan::new().crash_at(crash_cycle, Pid::new(0));
                machine
                    .run_with_failures(&mut victim_first, &plan, 10_000_000)
                    .unwrap();
                total += 1;
                let lost = (1..=32).any(|i| machine.memory().read(arrays.place(i)) == 0);
                if lost {
                    incomplete += 1;
                }
            }
            (incomplete, total)
        };
        let (faithful_losses, total) = sweep(true);
        let (fixed_losses, _) = sweep(false);
        assert_eq!(fixed_losses, 0, "the postorder flag must never lose places");
        assert!(
            faithful_losses > total / 10,
            "expected the verbatim Figure 6 to lose subtrees for many crash cycles \
             (got {faithful_losses}/{total}); if this drops to ~0 the crash window \
             moved — adjust the sweep range"
        );
    }

    #[test]
    fn faithful_figure6_is_correct_without_failures() {
        // Absent crashes the verbatim routine is fine — the defect is
        // purely in the failure model.
        let keys: Vec<Word> = (0..48).map(|i| (i * 11) % 48).collect();
        let (mut machine, arrays) = crate::sum::tests::machine_with_tree(&keys, 4);
        for i in 0..4 {
            let pid = Pid::new(i);
            machine.add_process(Box::new(pram::SeqProcess::new(vec![
                Box::new(TreeSumProcess::new(arrays, pid, 1)),
                Box::new(FindPlaceProcess::faithful_figure6(arrays, pid, 1)),
            ])));
        }
        machine.run(&mut SyncScheduler, 10_000_000).unwrap();
        // Check ranks only — the verbatim routine has no place_done flag.
        let mem = machine.memory();
        let mut order: Vec<usize> = (1..=48).collect();
        order.sort_by_key(|&i| (keys[i - 1], i));
        for (rank0, &elem) in order.iter().enumerate() {
            assert_eq!(mem.read(arrays.place(elem)), rank0 as Word + 1);
        }
    }

    #[test]
    fn wait_free_step_bound_single_processor() {
        let n = 64usize;
        let keys: Vec<Word> = (0..n as Word).map(|i| (i * 23) % n as Word).collect();
        let (mut machine, arrays) = crate::sum::tests::machine_with_tree(&keys, 3);
        machine.add_process(Box::new(pram::SeqProcess::new(vec![
            Box::new(TreeSumProcess::new(arrays, Pid::new(0), 1)),
            Box::new(FindPlaceProcess::new(arrays, Pid::new(0), 1)),
        ])));
        let report = machine.run(&mut SyncScheduler, 1_000_000).unwrap();
        assert!(
            report.metrics.max_steps_per_process() <= (12 * n + 32) as u64,
            "{} steps exceeds O(N)",
            report.metrics.max_steps_per_process()
        );
    }
}
