//! The final element shuffle: moving each element to its computed rank.
//!
//! §2.2 names the third phase "element shuffling": once `find_place` has
//! assigned every element its rank, the records must actually be moved.
//! The move is an independent job per element — exactly the shape of the
//! write-all problem — so it runs as one more [`wat::LeafWorker`] pass
//! under a work-assignment tree, keeping it wait-free: a crashed
//! processor's unmoved elements are picked up by survivors.

use pram::{Op, OpResult, Region, Word};
use wat::{LeafWorker, WorkerOp};

use crate::layout::ElementArrays;

/// What the scatter writes into the destination slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScatterMode {
    /// Write the element's key — produces the sorted output array.
    Keys,
    /// Write the element's index — produces a sorted permutation, used by
    /// the low-contention sort to materialize a group's sorted slice.
    Indices,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum St {
    ReadPlace,
    AwaitPlace,
    AwaitKey,
    AwaitWrite,
    Finished,
}

/// Job `j` moves element `first_element + j` into `dest[place - 1]`.
#[derive(Clone, Debug)]
pub struct ScatterWorker {
    arrays: ElementArrays,
    dest: Region,
    first_element: usize,
    mode: ScatterMode,
    state: St,
    element: usize,
    place: Word,
}

impl ScatterWorker {
    /// Creates a scatter worker writing into `dest` (`dest[r - 1]` for
    /// rank `r`, so `dest` must have as many cells as the tree being
    /// scattered has elements).
    pub fn new(
        arrays: ElementArrays,
        dest: Region,
        first_element: usize,
        mode: ScatterMode,
    ) -> Self {
        ScatterWorker {
            arrays,
            dest,
            first_element,
            mode,
            state: St::Finished,
            element: 0,
            place: 0,
        }
    }
}

impl LeafWorker for ScatterWorker {
    fn begin(&mut self, job: usize) {
        self.element = self.first_element + job;
        self.state = St::ReadPlace;
    }

    fn step(&mut self, last: Option<OpResult>) -> WorkerOp {
        match self.state {
            St::ReadPlace => {
                self.state = St::AwaitPlace;
                WorkerOp::Op(Op::Read(self.arrays.place(self.element)))
            }
            St::AwaitPlace => {
                self.place = last.expect("place read pending").read_value();
                debug_assert!(self.place > 0, "scatter before place computed");
                match self.mode {
                    ScatterMode::Keys => {
                        self.state = St::AwaitKey;
                        WorkerOp::Op(Op::Read(self.arrays.key(self.element)))
                    }
                    ScatterMode::Indices => {
                        self.state = St::AwaitWrite;
                        WorkerOp::Op(Op::Write(
                            self.dest.at(self.place as usize - 1),
                            self.element as Word,
                        ))
                    }
                }
            }
            St::AwaitKey => {
                let key = last.expect("key read pending").read_value();
                self.state = St::AwaitWrite;
                WorkerOp::Op(Op::Write(self.dest.at(self.place as usize - 1), key))
            }
            St::AwaitWrite => {
                self.state = St::Finished;
                WorkerOp::Done
            }
            St::Finished => WorkerOp::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram::{Machine, MemoryLayout, SyncScheduler};

    /// Sets up arrays with precomputed places (identity permutation of
    /// ranks via the given order) and scatters with `nprocs`.
    fn scatter(keys: &[Word], mode: ScatterMode, nprocs: usize) -> Vec<Word> {
        let n = keys.len();
        let mut layout = MemoryLayout::new();
        let arrays = ElementArrays::layout(&mut layout, n);
        let dest = layout.region(n);
        let swat = wat::Wat::layout(&mut layout, n);
        let mut machine = Machine::new(layout.total());
        arrays.load_keys(machine.memory_mut(), keys);
        // Compute places locally: rank among (key, index) pairs.
        let mut order: Vec<usize> = (1..=n).collect();
        order.sort_by_key(|&i| (keys[i - 1], i));
        let mut places = vec![0; n + 1];
        for (rank0, &elem) in order.iter().enumerate() {
            places[elem] = rank0 as Word + 1;
        }
        machine.memory_mut().load(arrays.place(1) - 1, &places);
        for p in swat.processes(nprocs, |_| ScatterWorker::new(arrays, dest, 1, mode)) {
            machine.add_process(p);
        }
        machine.run(&mut SyncScheduler, 1_000_000).unwrap();
        machine.memory().snapshot(dest.range())
    }

    #[test]
    fn scatters_keys_into_sorted_order() {
        let keys = vec![5, 3, 9, 1, 7];
        assert_eq!(scatter(&keys, ScatterMode::Keys, 2), vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn scatters_indices_into_key_order() {
        let keys = vec![5, 3, 9, 1, 7];
        // Sorted by key: elements 4(1), 2(3), 1(5), 5(7), 3(9).
        assert_eq!(scatter(&keys, ScatterMode::Indices, 3), vec![4, 2, 1, 5, 3]);
    }

    #[test]
    fn scatter_with_duplicates_is_stable_by_index() {
        let keys = vec![2, 1, 2, 1];
        assert_eq!(
            scatter(&keys, ScatterMode::Indices, 2),
            vec![2, 4, 1, 3],
            "ties broken by element index"
        );
    }

    #[test]
    fn single_element_scatter() {
        assert_eq!(scatter(&[42], ScatterMode::Keys, 1), vec![42]);
    }
}
