//! Randomized phase-1 work allocation (end of §2.3).
//!
//! Lemma 2.8 needs the input to be in random order; otherwise the first
//! elements inserted (those nearest each processor's starting leaf) can
//! form a deep, skewed tree top. The fix: processors pick elements
//! *uniformly at random*, insert them, and propagate completion up the WAT
//! with the climbing sequence of `next_element` (Figure 1, lines 4–12).
//! Only after picking already-done elements `log N` times in a row does a
//! processor fall back to the deterministic WAT walk. With high
//! probability the first `log N - log log N` tree levels are then built
//! from uniformly random elements, restoring `O(log N)` expected depth on
//! *any* input order.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pram::{Op, OpResult, Pid, Process};
use wat::{LeafWorker, Wat, WatProcess, WorkerOp, DONE};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum St {
    Pick,
    AwaitLeaf,
    Working,
    MarkLeaf,
    AwaitMark,
    ClimbCheck,
    AwaitSibling,
    AwaitParentMark,
    Delegated,
}

/// Phase-1 allocator: random picks, then WAT fallback.
pub struct RandomAllocProcess<W: LeafWorker> {
    wat: Wat,
    pid: Pid,
    nprocs: usize,
    rng: StdRng,
    state: St,
    cur: usize,
    consecutive_done: usize,
    threshold: usize,
    /// Worker while in random mode; moves into `inner` on fallback.
    worker: Option<W>,
    inner: Option<WatProcess<W>>,
}

impl<W: LeafWorker> RandomAllocProcess<W> {
    /// Creates the allocator for `pid` of `nprocs` over `wat`, driving
    /// `worker` on each leaf. Randomness derives from `(seed, pid)`.
    pub fn new(wat: Wat, pid: Pid, nprocs: usize, seed: u64, worker: W) -> Self {
        let leaves = wat.tree().leaves();
        RandomAllocProcess {
            wat,
            pid,
            nprocs,
            rng: StdRng::seed_from_u64(
                seed ^ (pid.index() as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
            ),
            state: St::Pick,
            cur: 0,
            consecutive_done: 0,
            threshold: leaves.trailing_zeros().max(1) as usize,
            worker: Some(worker),
            inner: None,
        }
    }
}

impl<W: LeafWorker> Process for RandomAllocProcess<W> {
    fn step(&mut self, mut last: Option<OpResult>) -> Op {
        loop {
            match self.state {
                St::Pick => {
                    let tree = self.wat.tree();
                    let job = self.rng.gen_range(0..tree.leaves());
                    self.cur = tree.leaf_node(job);
                    self.state = St::AwaitLeaf;
                    return Op::Read(tree.addr(self.cur));
                }
                St::AwaitLeaf => {
                    let v = last.take().expect("leaf read pending").read_value();
                    if v == DONE {
                        self.consecutive_done += 1;
                        if self.consecutive_done >= self.threshold {
                            // log N misses in a row: the array is mostly
                            // built; finish via the deterministic WAT,
                            // entering at the last-picked leaf.
                            let job = self.wat.tree().job_of(self.cur);
                            self.inner = Some(WatProcess::resuming_at(
                                self.wat,
                                self.pid,
                                self.nprocs,
                                self.worker.take().expect("worker present"),
                                job,
                            ));
                            self.state = St::Delegated;
                            continue;
                        }
                        self.state = St::Pick;
                        continue;
                    }
                    self.consecutive_done = 0;
                    let job = self.wat.tree().job_of(self.cur);
                    if job < self.wat.jobs() {
                        self.worker.as_mut().expect("worker present").begin(job);
                        self.state = St::Working;
                    } else {
                        self.state = St::MarkLeaf;
                    }
                }
                St::Working => {
                    match self
                        .worker
                        .as_mut()
                        .expect("worker present")
                        .step(last.take())
                    {
                        WorkerOp::Op(op) => return op,
                        WorkerOp::Done => self.state = St::MarkLeaf,
                    }
                }
                St::MarkLeaf => {
                    self.state = St::AwaitMark;
                    return Op::Write(self.wat.tree().addr(self.cur), DONE);
                }
                St::AwaitMark => {
                    last.take();
                    self.state = St::ClimbCheck;
                }
                St::ClimbCheck => {
                    // The partial climb of Figure 1 lines 4–12: propagate
                    // DONE upward while the sibling subtree is complete.
                    let tree = self.wat.tree();
                    if tree.is_root(self.cur) {
                        // Root marked: all work done.
                        return Op::Halt;
                    }
                    self.state = St::AwaitSibling;
                    return Op::Read(tree.addr(tree.sibling(self.cur)));
                }
                St::AwaitSibling => {
                    let v = last.take().expect("sibling read pending").read_value();
                    if v == DONE {
                        let parent = self.wat.tree().parent(self.cur);
                        self.cur = parent;
                        self.state = St::AwaitParentMark;
                        return Op::Write(self.wat.tree().addr(parent), DONE);
                    }
                    self.state = St::Pick;
                }
                St::AwaitParentMark => {
                    last.take();
                    self.state = St::ClimbCheck;
                }
                St::Delegated => {
                    return self
                        .inner
                        .as_mut()
                        .expect("inner present")
                        .step(last.take());
                }
            }
        }
    }

    fn label(&self) -> &'static str {
        "random-alloc"
    }
}

impl<W: LeafWorker> std::fmt::Debug for RandomAllocProcess<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RandomAllocProcess")
            .field("state", &self.state)
            .field("consecutive_done", &self.consecutive_done)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram::{Machine, MemoryLayout, SyncScheduler};
    use wat::WriteAllWorker;

    fn write_all(jobs: usize, nprocs: usize, seed: u64) -> (Machine, Wat, pram::Region) {
        let mut layout = MemoryLayout::new();
        let out = layout.region(jobs);
        let wat = Wat::layout(&mut layout, jobs);
        let mut machine = Machine::with_seed(layout.total(), seed);
        for i in 0..nprocs {
            machine.add_process(Box::new(RandomAllocProcess::new(
                wat,
                Pid::new(i),
                nprocs,
                seed,
                WriteAllWorker::new(out, 1),
            )));
        }
        (machine, wat, out)
    }

    #[test]
    fn completes_write_all() {
        let (mut m, wat, out) = write_all(32, 8, 3);
        m.run(&mut SyncScheduler, 1_000_000).unwrap();
        assert_eq!(m.memory().snapshot(out.range()), vec![1; 32]);
        assert!(wat.all_done(m.memory()));
    }

    #[test]
    fn completes_with_single_processor() {
        let (mut m, wat, out) = write_all(16, 1, 1);
        m.run(&mut SyncScheduler, 1_000_000).unwrap();
        assert_eq!(m.memory().snapshot(out.range()), vec![1; 16]);
        assert!(wat.all_done(m.memory()));
    }

    #[test]
    fn completes_with_non_power_of_two_jobs() {
        let (mut m, wat, out) = write_all(19, 4, 7);
        m.run(&mut SyncScheduler, 1_000_000).unwrap();
        assert_eq!(m.memory().snapshot(out.range()), vec![1; 19]);
        assert!(wat.all_done(m.memory()));
    }

    #[test]
    fn survives_crashes() {
        let (mut m, wat, out) = write_all(16, 8, 5);
        let mut plan = pram::failure::FailurePlan::new();
        for v in 1..8 {
            plan = plan.crash_at(v as u64 * 3, Pid::new(v));
        }
        m.run_with_failures(&mut SyncScheduler, &plan, 1_000_000)
            .unwrap();
        assert_eq!(m.memory().snapshot(out.range()), vec![1; 16]);
        assert!(wat.all_done(m.memory()));
    }

    #[test]
    fn random_picks_spread_early_insertions() {
        // With P processors starting, the first elements worked on should
        // not all be the N*pid/P leaves the deterministic WAT would pick.
        // We detect spreading by checking completion succeeds and the run
        // is deterministic per seed.
        let cycles = |seed| {
            let (mut m, _, _) = write_all(64, 16, seed);
            m.run(&mut SyncScheduler, 1_000_000).unwrap().metrics.cycles
        };
        assert_eq!(cycles(9), cycles(9));
        assert_ne!(cycles(9), 0);
    }
}
