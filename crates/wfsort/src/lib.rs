//! The wait-free parallel Quicksort of Shavit, Upfal and Zemach
//! (*"A Wait-Free Sorting Algorithm"*, PODC 1997) on the CRCW PRAM model.
//!
//! The algorithm sorts `N` elements with `P ≤ N` processors in
//! `O(N log N / P)` time with high probability — optimal — while being
//! *wait-free*: every processor finishes within a bounded number of its
//! own steps no matter how the others are delayed or crashed, and the
//! sort as a whole completes as long as any processor survives.
//!
//! Three phases (§2.2), each a module here:
//!
//! 1. [`build`] — insert every element into a binary pivot tree with CAS
//!    (Figure 4), work handed out by a [`wat::Wat`] so crashed
//!    processors' elements are re-assigned.
//! 2. [`sum`] — compute every subtree's size (Figure 5).
//! 3. [`place`] — derive every element's sorted rank from the sizes
//!    (Figure 6), then [`scatter`] moves elements to their ranks.
//!
//! [`sort::PramSorter`] chains the phases per processor; §3's
//! low-contention machinery lives in [`low_contention`], and input
//! distributions for experiments in [`workload`].
//!
//! # Example
//!
//! ```
//! use wfsort::{PramSorter, SortConfig, Workload};
//!
//! let keys = Workload::RandomPermutation.generate(128, 42);
//! let outcome = PramSorter::new(SortConfig::new(16)).sort(&keys)?;
//! assert!(outcome.sorted.windows(2).all(|w| w[0] <= w[1]));
//! // The paper's contention measure is metered for free:
//! println!("max contention: {}", outcome.report.metrics.max_contention);
//! # Ok::<(), wfsort::SortError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod explore;
pub mod layout;
pub mod low_contention;
pub mod place;
pub mod random_alloc;
pub mod scatter;
pub mod sort;
pub mod sum;
pub mod verify;
pub mod workload;

pub use crate::build::BuildTreeWorker;
pub use crate::explore::{machine_with_sized_tree, machine_with_tree, Phase, PhaseTarget};
pub use crate::layout::{ElementArrays, Side, SortLayout, EMPTY};
pub use crate::low_contention::LowContentionSorter;
pub use crate::place::FindPlaceProcess;
pub use crate::random_alloc::RandomAllocProcess;
pub use crate::scatter::{ScatterMode, ScatterWorker};
pub use crate::sort::{Allocation, PramSorter, PreparedSort, SortConfig, SortError, SortOutcome};
pub use crate::sum::TreeSumProcess;
pub use crate::verify::{check_sorted_permutation, validate_pivot_tree, TreeStats, VerifyError};
pub use crate::workload::Workload;
