//! The complete three-phase wait-free sort, assembled.
//!
//! Each of the `P` processors runs the four stages back-to-back with no
//! barrier (build → sum → place → shuffle), exactly as §2.2 prescribes:
//! "any processor that completes the first phase immediately goes on to
//! the second phase". Phase hand-off safety comes from the structures
//! themselves — a processor only leaves the build phase when the build
//! WAT's root is `DONE` (all elements inserted), only leaves `tree_sum`
//! when its root call returns (all sizes written), and so on.

use pram::{
    failure::FailurePlan, Machine, MachineError, Pid, Process, RunReport, Scheduler, SeqProcess,
    SyncScheduler, Word,
};
use wat::Wat;

use crate::build::BuildTreeWorker;
use crate::layout::SortLayout;
use crate::place::FindPlaceProcess;
use crate::random_alloc::RandomAllocProcess;
use crate::scatter::{ScatterMode, ScatterWorker};
use crate::sum::TreeSumProcess;

/// How phase 1 hands elements to processors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Allocation {
    /// The deterministic WAT of Figure 2. Optimal when the input is in
    /// random order (Lemma 2.8's precondition).
    #[default]
    Deterministic,
    /// The randomized strategy at the end of §2.3: pick elements uniformly
    /// at random until `log N` consecutive picks are already done, then
    /// fall back to the WAT. Removes the random-input-order assumption.
    Randomized,
}

/// Configuration of a PRAM sort run.
#[derive(Clone, Copy, Debug)]
pub struct SortConfig {
    /// Number of simulated processors `P`.
    pub nprocs: usize,
    /// Seed driving arbitration and all randomized choices.
    pub seed: u64,
    /// Phase-1 work allocation strategy.
    pub allocation: Allocation,
    /// Cycle budget; `None` derives a generous bound from `N`.
    pub max_cycles: Option<u64>,
}

impl SortConfig {
    /// A deterministic-allocation configuration with `nprocs` processors.
    pub fn new(nprocs: usize) -> Self {
        SortConfig {
            nprocs,
            seed: 0x5eed,
            allocation: Allocation::Deterministic,
            max_cycles: None,
        }
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the phase-1 allocation strategy.
    pub fn allocation(mut self, allocation: Allocation) -> Self {
        self.allocation = allocation;
        self
    }

    /// Overrides the cycle budget.
    pub fn max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = Some(max_cycles);
        self
    }

    fn budget(&self, n: usize) -> u64 {
        self.max_cycles.unwrap_or_else(|| {
            // Worst case (one survivor, fully skewed tree): O(N^2) work.
            let n = n as u64;
            100_000 + 64 * n * n
        })
    }
}

/// Result of a sort run: the sorted keys plus the execution metrics the
/// paper's lemmas constrain.
#[derive(Clone, Debug)]
pub struct SortOutcome {
    /// The keys in non-decreasing order.
    pub sorted: Vec<Word>,
    /// Machine metrics (cycles, work, contention, per-processor steps).
    pub report: RunReport,
}

/// Errors a sort run can produce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SortError {
    /// The machine exhausted its cycle budget — for a wait-free algorithm
    /// under a fair scheduler this indicates a bug or a hostile schedule
    /// that never steps anyone.
    Machine(MachineError),
}

impl std::fmt::Display for SortError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SortError::Machine(e) => write!(f, "sort did not complete: {e}"),
        }
    }
}

impl std::error::Error for SortError {}

impl From<MachineError> for SortError {
    fn from(e: MachineError) -> Self {
        SortError::Machine(e)
    }
}

/// A prepared machine plus the layout needed to read results back.
#[derive(Debug)]
pub struct PreparedSort {
    /// The machine, loaded with keys and processes, ready to run.
    pub machine: Machine,
    /// The memory plan (for reading the output or inspecting the tree).
    pub layout: SortLayout,
    /// The cycle budget derived from the configuration.
    pub budget: u64,
}

/// The wait-free parallel Quicksort of §2 on the simulated CRCW PRAM.
///
/// # Examples
///
/// ```
/// use wfsort::{PramSorter, SortConfig};
///
/// let sorter = PramSorter::new(SortConfig::new(8));
/// let outcome = sorter.sort(&[5, 1, 4, 2, 3])?;
/// assert_eq!(outcome.sorted, vec![1, 2, 3, 4, 5]);
/// # Ok::<(), wfsort::SortError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct PramSorter {
    config: SortConfig,
}

impl PramSorter {
    /// Creates a sorter with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.nprocs` is zero.
    pub fn new(config: SortConfig) -> Self {
        assert!(config.nprocs > 0, "need at least one processor");
        PramSorter { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SortConfig {
        &self.config
    }

    /// Builds the machine for sorting `keys` without running it, for
    /// callers that want to drive cycles themselves (failure injection at
    /// chosen moments, custom schedulers, per-cycle observation).
    ///
    /// # Panics
    ///
    /// Panics if `keys` has fewer than 2 elements — such inputs have
    /// nothing to do in parallel; [`PramSorter::sort`] handles them
    /// locally.
    pub fn prepare(&self, keys: &[Word]) -> PreparedSort {
        self.prepare_with_mode(keys, ScatterMode::Keys)
    }

    fn prepare_with_mode(&self, keys: &[Word], mode: ScatterMode) -> PreparedSort {
        assert!(keys.len() >= 2, "prepare needs at least two keys");
        let n = keys.len();
        let mut memlayout = pram::MemoryLayout::new();
        let layout = SortLayout::layout(&mut memlayout, n);
        let build_wat = Wat::layout(&mut memlayout, n - 1);
        let scatter_wat = Wat::layout(&mut memlayout, n);
        let mut machine = Machine::with_seed(memlayout.total(), self.config.seed);
        layout.elems.load_keys(machine.memory_mut(), keys);

        for i in 0..self.config.nprocs {
            let pid = Pid::new(i);
            let build_stage: Box<dyn Process> = match self.config.allocation {
                Allocation::Deterministic => Box::new(wat::WatProcess::new(
                    build_wat,
                    pid,
                    self.config.nprocs,
                    BuildTreeWorker::for_full_sort(layout.elems),
                )),
                Allocation::Randomized => Box::new(RandomAllocProcess::new(
                    build_wat,
                    pid,
                    self.config.nprocs,
                    self.config.seed,
                    BuildTreeWorker::for_full_sort(layout.elems),
                )),
            };
            let stages: Vec<Box<dyn Process>> = vec![
                build_stage,
                Box::new(TreeSumProcess::new(layout.elems, pid, 1)),
                Box::new(FindPlaceProcess::new(layout.elems, pid, 1)),
                Box::new(wat::WatProcess::new(
                    scatter_wat,
                    pid,
                    self.config.nprocs,
                    ScatterWorker::new(layout.elems, layout.output, 1, mode),
                )),
            ];
            machine.add_process(Box::new(SeqProcess::new(stages)));
        }
        PreparedSort {
            machine,
            layout,
            budget: self.config.budget(n),
        }
    }

    /// Sorts `keys` on a faultless synchronous PRAM (the setting of the
    /// paper's run-time lemmas).
    ///
    /// # Errors
    ///
    /// Returns [`SortError::Machine`] if the cycle budget is exhausted.
    pub fn sort(&self, keys: &[Word]) -> Result<SortOutcome, SortError> {
        self.sort_under(keys, &mut SyncScheduler, &FailurePlan::new())
    }

    /// Sorts `keys` and additionally returns the sorted *permutation*:
    /// entry `r` of the permutation is the 0-based input index of the
    /// rank-`r + 1` element (stable for duplicates, by index). Useful for
    /// sorting records by key: gather your payloads through the
    /// permutation.
    ///
    /// # Errors
    ///
    /// Returns [`SortError::Machine`] if the cycle budget is exhausted.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfsort::{PramSorter, SortConfig};
    ///
    /// let keys = vec![30, 10, 20];
    /// let (sorted, perm) = PramSorter::new(SortConfig::new(2))
    ///     .sort_with_permutation(&keys)?;
    /// assert_eq!(sorted, vec![10, 20, 30]);
    /// assert_eq!(perm, vec![1, 2, 0]);
    /// # Ok::<(), wfsort::SortError>(())
    /// ```
    pub fn sort_with_permutation(
        &self,
        keys: &[Word],
    ) -> Result<(Vec<Word>, Vec<usize>), SortError> {
        if keys.len() < 2 {
            return Ok((keys.to_vec(), (0..keys.len()).collect()));
        }
        // Run the machine with an index-scatter final phase; the sorted
        // keys follow from the permutation locally.
        let mut prepared = self.prepare_with_mode(keys, ScatterMode::Indices);
        prepared.machine.run_with_failures(
            &mut SyncScheduler,
            &FailurePlan::new(),
            prepared.budget,
        )?;
        let perm: Vec<usize> = prepared
            .layout
            .read_output(prepared.machine.memory())
            .into_iter()
            .map(|e| e as usize - 1) // elements are 1-based in memory
            .collect();
        let sorted = perm.iter().map(|&i| keys[i]).collect();
        Ok((sorted, perm))
    }

    /// Sorts `keys` under an arbitrary scheduler and failure plan. The
    /// wait-free guarantee: as long as the scheduler keeps stepping at
    /// least one non-crashed processor, the sort completes.
    ///
    /// # Errors
    ///
    /// Returns [`SortError::Machine`] if the cycle budget is exhausted.
    pub fn sort_under(
        &self,
        keys: &[Word],
        scheduler: &mut dyn Scheduler,
        failures: &FailurePlan,
    ) -> Result<SortOutcome, SortError> {
        if keys.len() < 2 {
            // Nothing to parallelize; report an empty run.
            return Ok(SortOutcome {
                sorted: keys.to_vec(),
                report: Machine::new(0).report(),
            });
        }
        let mut prepared = self.prepare(keys);
        let report = prepared
            .machine
            .run_with_failures(scheduler, failures, prepared.budget)?;
        Ok(SortOutcome {
            sorted: prepared.layout.read_output(prepared.machine.memory()),
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_sorted_permutation;
    use crate::workload::Workload;
    use pram::{RandomScheduler, RoundRobinScheduler, SingleStepScheduler};

    fn assert_sorts(keys: &[Word], config: SortConfig) -> SortOutcome {
        let outcome = PramSorter::new(config).sort(keys).expect("sort completes");
        check_sorted_permutation(keys, &outcome.sorted).expect("valid result");
        outcome
    }

    #[test]
    fn sorts_small_fixed_inputs() {
        for keys in [
            vec![2, 1],
            vec![1, 2],
            vec![3, 1, 2],
            vec![5, 4, 3, 2, 1],
            vec![1, 1, 1, 1],
            vec![7, -3, 0, 7, -3],
        ] {
            assert_sorts(&keys, SortConfig::new(4));
        }
    }

    #[test]
    fn trivial_inputs_short_circuit() {
        let sorter = PramSorter::new(SortConfig::new(4));
        assert_eq!(sorter.sort(&[]).unwrap().sorted, Vec::<Word>::new());
        assert_eq!(sorter.sort(&[9]).unwrap().sorted, vec![9]);
    }

    #[test]
    fn sorts_every_workload_with_p_equals_n() {
        let n = 64;
        for w in Workload::all() {
            let keys = w.generate(n, 42);
            assert_sorts(&keys, SortConfig::new(n).seed(17));
        }
    }

    #[test]
    fn sorts_with_one_processor() {
        let keys = Workload::RandomPermutation.generate(48, 7);
        assert_sorts(&keys, SortConfig::new(1));
    }

    #[test]
    fn sorts_with_more_processors_than_elements() {
        let keys = Workload::UniformRandom.generate(16, 3);
        assert_sorts(&keys, SortConfig::new(64));
    }

    #[test]
    fn randomized_allocation_sorts_all_workloads() {
        let n = 64;
        for w in Workload::all() {
            let keys = w.generate(n, 5);
            assert_sorts(
                &keys,
                SortConfig::new(n)
                    .seed(23)
                    .allocation(Allocation::Randomized),
            );
        }
    }

    #[test]
    fn sorts_under_random_scheduler() {
        let keys = Workload::RandomPermutation.generate(32, 11);
        let sorter = PramSorter::new(SortConfig::new(8).seed(1));
        let mut sched = RandomScheduler::new(5, 0.4);
        let outcome = sorter
            .sort_under(&keys, &mut sched, &FailurePlan::new())
            .unwrap();
        check_sorted_permutation(&keys, &outcome.sorted).unwrap();
    }

    #[test]
    fn sorts_fully_sequentially() {
        let keys = Workload::RandomPermutation.generate(24, 2);
        let sorter = PramSorter::new(SortConfig::new(4));
        let mut sched = SingleStepScheduler::new();
        let outcome = sorter
            .sort_under(&keys, &mut sched, &FailurePlan::new())
            .unwrap();
        check_sorted_permutation(&keys, &outcome.sorted).unwrap();
    }

    #[test]
    fn sorts_with_width_limited_scheduler() {
        let keys = Workload::Sawtooth(5).generate(40, 9);
        let sorter = PramSorter::new(SortConfig::new(16).seed(2));
        let mut sched = RoundRobinScheduler::new(3, 4);
        let outcome = sorter
            .sort_under(&keys, &mut sched, &FailurePlan::new())
            .unwrap();
        check_sorted_permutation(&keys, &outcome.sorted).unwrap();
    }

    #[test]
    fn survives_random_crash_storms() {
        let keys = Workload::RandomPermutation.generate(32, 31);
        for seed in 0..8 {
            let sorter = PramSorter::new(SortConfig::new(8).seed(seed));
            let plan = FailurePlan::random_crashes(8, 0.8, 200, seed);
            let outcome = sorter
                .sort_under(&keys, &mut SyncScheduler, &plan)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            check_sorted_permutation(&keys, &outcome.sorted)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn survives_crash_and_revive() {
        let keys = Workload::Reverse.generate(24, 0);
        let sorter = PramSorter::new(SortConfig::new(6));
        let plan = FailurePlan::new()
            .crash_at(10, Pid::new(0))
            .crash_at(12, Pid::new(1))
            .revive_at(300, Pid::new(0));
        let outcome = sorter.sort_under(&keys, &mut SyncScheduler, &plan).unwrap();
        check_sorted_permutation(&keys, &outcome.sorted).unwrap();
    }

    #[test]
    fn deterministic_replay() {
        let keys = Workload::UniformRandom.generate(40, 4);
        let run = || {
            let outcome = PramSorter::new(SortConfig::new(8).seed(99))
                .sort(&keys)
                .unwrap();
            (outcome.sorted, outcome.report.metrics.cycles)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn p_equals_n_time_is_subquadratic() {
        // Lemma 2.8 shape check: with P = N on random input, cycles grow
        // ~log N per element, nothing like N^2.
        let cycles = |n: usize| {
            let keys = Workload::RandomPermutation.generate(n, 8);
            PramSorter::new(SortConfig::new(n))
                .sort(&keys)
                .unwrap()
                .report
                .metrics
                .cycles
        };
        let c64 = cycles(64);
        let c256 = cycles(256);
        assert!(
            (c256 as f64) < (c64 as f64) * 3.0,
            "time grew too fast: {c64} -> {c256}"
        );
    }
}
