//! Phase 1: building the Quicksort pivot tree (Figure 4).
//!
//! Each element is installed into a binary tree rooted at the first
//! element by walking down from the root and compare-and-swapping the
//! element into the first `EMPTY` child pointer on its path. Because every
//! processor working on the same element follows the same deterministic
//! path (observations 1–6 in §2.2), duplicated work is harmless and the
//! loop terminates within `N - 1` iterations (Lemma 2.4), making the
//! routine wait-free.

use pram::{Op, OpResult, Word};
use wat::{LeafWorker, WorkerOp};

use crate::layout::{ElementArrays, Side, EMPTY};

/// Compares two `(key, index)` pairs lexicographically — the paper's
/// assumption of distinct keys, realized by breaking ties with the
/// element index.
pub fn key_less(a_key: Word, a_index: usize, b_key: Word, b_index: usize) -> bool {
    (a_key, a_index) < (b_key, b_index)
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum St {
    ReadMyKey,
    AwaitMyKey,
    AwaitParentKey,
    AwaitCas,
    AwaitParentPtr,
    Finished,
}

/// The `build_tree` routine as a [`LeafWorker`]: job `j` inserts element
/// `first_element + j`.
///
/// Deviations from Figure 4, both documented in DESIGN.md:
///
/// * the success check re-read (lines 14–15) is folded into the CAS
///   result, which already carries the child's post-cycle value — same
///   semantics, one fewer memory operation per level;
/// * after installation the worker records `parent[i]`, which the
///   low-contention phases of §3.3 need to compute a probed node's place
///   from its parent. Processors that duplicate a job follow the same
///   path (observation 4), so they write the same parent — a benign race.
#[derive(Clone, Debug)]
pub struct BuildTreeWorker {
    arrays: ElementArrays,
    root: usize,
    first_element: usize,
    state: St,
    element: usize,
    my_key: Word,
    parent: usize,
}

impl BuildTreeWorker {
    /// Creates a worker inserting elements `first_element..` under `root`.
    ///
    /// For the full sort: `root = 1`, `first_element = 2`, jobs
    /// `0..n - 1`. For a group sorting a slice `s..s + m` (1-based):
    /// `root = s`, `first_element = s + 1`, jobs `0..m - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `first_element <= root` (the root is never inserted —
    /// Figure 4 line 5).
    pub fn new(arrays: ElementArrays, root: usize, first_element: usize) -> Self {
        assert!(
            first_element > root,
            "the root element is not inserted into the tree"
        );
        BuildTreeWorker {
            arrays,
            root,
            first_element,
            state: St::Finished,
            element: 0,
            my_key: 0,
            parent: 0,
        }
    }

    /// Convenience constructor for the full sort (root element 1).
    pub fn for_full_sort(arrays: ElementArrays) -> Self {
        Self::new(arrays, 1, 2)
    }
}

impl LeafWorker for BuildTreeWorker {
    fn begin(&mut self, job: usize) {
        self.element = self.first_element + job;
        self.parent = self.root;
        self.state = St::ReadMyKey;
    }

    fn step(&mut self, last: Option<OpResult>) -> WorkerOp {
        match self.state {
            St::ReadMyKey => {
                self.state = St::AwaitMyKey;
                WorkerOp::Op(Op::Read(self.arrays.key(self.element)))
            }
            St::AwaitMyKey => {
                self.my_key = last.expect("key read pending").read_value();
                self.state = St::AwaitParentKey;
                WorkerOp::Op(Op::Read(self.arrays.key(self.parent)))
            }
            St::AwaitParentKey => {
                let parent_key = last.expect("parent key pending").read_value();
                // Figure 4 line 8: descend SMALL if the parent's key is
                // larger than ours, BIG otherwise (ties broken by index).
                let side = if key_less(self.my_key, self.element, parent_key, self.parent) {
                    Side::Small
                } else {
                    Side::Big
                };
                self.state = St::AwaitCas;
                WorkerOp::Op(Op::Cas {
                    addr: self.arrays.child(self.parent, side),
                    expected: EMPTY,
                    new: self.element as Word,
                })
            }
            St::AwaitCas => {
                let current = match last.expect("cas result pending") {
                    OpResult::Cas { current, .. } => current,
                    other => panic!("unexpected {other:?}"),
                };
                if current == self.element as Word {
                    // Installed — by us or by another processor working
                    // the same element along the same path. Record the
                    // parent pointer for §3.3 before reporting done, so a
                    // crash cannot leave an installed node without one.
                    self.state = St::AwaitParentPtr;
                    WorkerOp::Op(Op::Write(
                        self.arrays.parent(self.element),
                        self.parent as Word,
                    ))
                } else {
                    // Someone else's element got the slot; descend to it.
                    self.parent = current as usize;
                    self.state = St::AwaitParentKey;
                    WorkerOp::Op(Op::Read(self.arrays.key(self.parent)))
                }
            }
            St::AwaitParentPtr => {
                self.state = St::Finished;
                WorkerOp::Done
            }
            St::Finished => WorkerOp::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram::{Machine, MemoryLayout, SyncScheduler};
    use wat::Wat;

    /// Builds the pivot tree for `keys` with `nprocs` processors and
    /// returns (machine, arrays).
    fn build(keys: &[Word], nprocs: usize, seed: u64) -> (Machine, ElementArrays) {
        let n = keys.len();
        let mut layout = MemoryLayout::new();
        let arrays = ElementArrays::layout(&mut layout, n);
        let wat = Wat::layout(&mut layout, n - 1);
        let mut machine = Machine::with_seed(layout.total(), seed);
        arrays.load_keys(machine.memory_mut(), keys);
        for r in arrays.child_regions() {
            machine.memory_mut().watch_write_once(r.range());
        }
        for p in wat.processes(nprocs, |_| BuildTreeWorker::for_full_sort(arrays)) {
            machine.add_process(p);
        }
        machine.run(&mut SyncScheduler, 10_000_000).unwrap();
        (machine, arrays)
    }

    /// Checks the tree rooted at element 1 is a BST over all n elements;
    /// returns the in-order sequence of keys.
    fn in_order(machine: &Machine, arrays: &ElementArrays, node: usize, out: &mut Vec<Word>) {
        if node == 0 {
            return;
        }
        let mem = machine.memory();
        let small = mem.read(arrays.child(node, Side::Small)) as usize;
        let big = mem.read(arrays.child(node, Side::Big)) as usize;
        in_order(machine, arrays, small, out);
        out.push(mem.read(arrays.key(node)));
        in_order(machine, arrays, big, out);
    }

    fn assert_valid_tree(machine: &Machine, arrays: &ElementArrays, keys: &[Word]) {
        let mut seq = Vec::new();
        in_order(machine, arrays, 1, &mut seq);
        let mut expect = keys.to_vec();
        expect.sort_unstable();
        assert_eq!(seq, expect, "in-order traversal must be the sorted keys");
    }

    #[test]
    fn builds_bst_single_processor() {
        let keys = vec![50, 20, 80, 10, 30, 70, 90];
        let (m, a) = build(&keys, 1, 0);
        assert_valid_tree(&m, &a, &keys);
    }

    #[test]
    fn builds_bst_many_processors() {
        let keys: Vec<Word> = (0..64).map(|i| (i * 37) % 64).collect();
        let (m, a) = build(&keys, 64, 3);
        assert_valid_tree(&m, &a, &keys);
    }

    #[test]
    fn handles_duplicate_keys_with_index_tiebreak() {
        let keys = vec![5, 5, 5, 5, 5, 5, 5, 5];
        let (m, a) = build(&keys, 4, 1);
        assert_valid_tree(&m, &a, &keys);
    }

    #[test]
    fn sorted_input_builds_right_spine() {
        // Single processor: insertion order is element order, so sorted
        // input degenerates into a right spine (the shape depends on the
        // interleaving when several processors insert concurrently).
        let keys = vec![1, 2, 3, 4, 5];
        let (m, a) = build(&keys, 1, 0);
        assert_valid_tree(&m, &a, &keys);
        // Each element's BIG child is the next; SMALL children empty.
        for i in 1..5usize {
            assert_eq!(
                m.memory().read(a.child(i, Side::Big)),
                i as Word + 1,
                "element {i}"
            );
            assert_eq!(m.memory().read(a.child(i, Side::Small)), EMPTY);
        }
    }

    #[test]
    fn parent_pointers_mirror_child_pointers() {
        let keys: Vec<Word> = (0..32).map(|i| (i * 13) % 32).collect();
        let (m, a) = build(&keys, 8, 5);
        let mem = m.memory();
        for i in 1..=32usize {
            for side in [Side::Small, Side::Big] {
                let c = mem.read(a.child(i, side));
                if c != EMPTY {
                    assert_eq!(
                        mem.read(a.parent(c as usize)),
                        i as Word,
                        "child {c} of {i} has wrong parent pointer"
                    );
                }
            }
        }
        assert_eq!(mem.read(a.parent(1)), EMPTY, "root has no parent");
    }

    #[test]
    fn lemma_2_4_bounded_iterations_on_adversarial_input() {
        // Sorted input gives tree depth N-1: the worst case for the
        // insertion loop. Even so, each job's loop runs at most N-1 times
        // and the phase completes.
        let n = 64;
        let keys: Vec<Word> = (0..n as Word).collect();
        let (m, a) = build(&keys, 1, 0);
        assert_valid_tree(&m, &a, &keys);
        // Single processor: ~sum over elements of depth ops, O(N^2) but
        // finite — the run completed, which is the claim.
        assert!(m.metrics().cycles < (n * n * 16) as u64);
    }

    #[test]
    fn two_element_tree() {
        let keys = vec![2, 1];
        let (m, a) = build(&keys, 2, 0);
        assert_eq!(m.memory().read(a.child(1, Side::Small)), 2);
        assert_eq!(m.memory().read(a.child(1, Side::Big)), EMPTY);
    }

    #[test]
    #[should_panic(expected = "root element is not inserted")]
    fn rejects_inserting_the_root() {
        let mut layout = MemoryLayout::new();
        let arrays = ElementArrays::layout(&mut layout, 4);
        BuildTreeWorker::new(arrays, 2, 2);
    }

    #[test]
    fn key_less_tiebreaks_by_index() {
        assert!(key_less(5, 1, 5, 2));
        assert!(!key_less(5, 2, 5, 1));
        assert!(key_less(4, 9, 5, 1));
    }
}
