//! Phase 2: subtree summation (Figure 5).
//!
//! Every processor traverses the pivot tree from the root, computing and
//! recording the size of each subtree. A subtree whose size is already
//! recorded is skipped — `size > 0` doubles as a completion marker, which
//! is what makes the skip crash-safe: a size is only ever written *after*
//! the whole subtree below it has been summed. Processors use the bits of
//! their ID to pick which child to visit first (bit `d` at depth `d`),
//! spreading `P` processors over `P` different subtrees within `log P`
//! levels, which yields the `O(log P + N/P)` phase time of §2.3.
//!
//! The paper writes the routine recursively; this process carries an
//! explicit frame stack so it can be suspended between any two memory
//! operations.

use pram::{Op, OpResult, Pid, Process, Word};

use crate::layout::{ElementArrays, Side, EMPTY};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stage {
    Enter,
    AwaitSize,
    AwaitChild1,
    ReadChild2,
    AwaitChild2,
    WriteSize,
    AwaitSizeWrite,
}

#[derive(Clone, Copy, Debug)]
struct Frame {
    node: usize,
    depth: u32,
    first: Side,
    sum1: Word,
    stage: Stage,
}

/// One processor executing `tree_sum(root, 0)` (Figure 5).
#[derive(Debug)]
pub struct TreeSumProcess {
    arrays: ElementArrays,
    pid: Pid,
    stack: Vec<Frame>,
    /// Value returned by the frame that just popped.
    ret: Word,
    started: bool,
    root: usize,
}

impl TreeSumProcess {
    /// Creates the summation process for `pid`, summing the tree rooted at
    /// element `root`.
    pub fn new(arrays: ElementArrays, pid: Pid, root: usize) -> Self {
        TreeSumProcess {
            arrays,
            pid,
            stack: Vec::new(),
            ret: 0,
            started: false,
            root,
        }
    }

    fn push(&mut self, node: usize, depth: u32) {
        self.stack.push(Frame {
            node,
            depth,
            first: Side::from_bit(self.pid.bit(depth)),
            sum1: 0,
            stage: Stage::Enter,
        });
    }
}

impl Process for TreeSumProcess {
    fn step(&mut self, mut last: Option<OpResult>) -> Op {
        if !self.started {
            self.started = true;
            self.push(self.root, 0);
        }
        loop {
            let Some(frame) = self.stack.last_mut() else {
                return Op::Halt;
            };
            match frame.stage {
                Stage::Enter => {
                    frame.stage = Stage::AwaitSize;
                    return Op::Read(self.arrays.size(frame.node));
                }
                Stage::AwaitSize => {
                    let v = last.take().expect("size read pending").read_value();
                    if v > 0 {
                        // Subtree already summed (by us earlier or by any
                        // other processor): return it.
                        self.ret = v;
                        self.stack.pop();
                        continue;
                    }
                    frame.stage = Stage::AwaitChild1;
                    return Op::Read(self.arrays.child(frame.node, frame.first));
                }
                Stage::AwaitChild1 => {
                    let c = last.take().expect("child read pending").read_value();
                    frame.stage = Stage::ReadChild2;
                    if c != EMPTY {
                        let depth = frame.depth + 1;
                        self.ret = 0;
                        self.push(c as usize, depth);
                        continue;
                    }
                    self.ret = 0;
                }
                Stage::ReadChild2 => {
                    frame.sum1 = self.ret;
                    frame.stage = Stage::AwaitChild2;
                    return Op::Read(self.arrays.child(frame.node, frame.first.other()));
                }
                Stage::AwaitChild2 => {
                    let c = last.take().expect("child read pending").read_value();
                    frame.stage = Stage::WriteSize;
                    if c != EMPTY {
                        let depth = frame.depth + 1;
                        self.ret = 0;
                        self.push(c as usize, depth);
                        continue;
                    }
                    self.ret = 0;
                }
                Stage::WriteSize => {
                    // Entered either from AwaitChild2 (ret = 0, no second
                    // child) or from a child frame popping (ret = its
                    // sum). Stash the total in the frame so the write's
                    // completion can return it.
                    let total = frame.sum1 + self.ret + 1;
                    frame.sum1 = total;
                    let node = frame.node;
                    frame.stage = Stage::AwaitSizeWrite;
                    return Op::Write(self.arrays.size(node), total);
                }
                Stage::AwaitSizeWrite => {
                    last.take();
                    self.ret = frame.sum1;
                    self.stack.pop();
                }
            }
        }
    }

    fn label(&self) -> &'static str {
        "tree-sum"
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use pram::{Machine, SyncScheduler};

    /// Builds a pivot tree locally (same deterministic rule as phase 1)
    /// and loads it into a machine's memory; returns (machine, arrays).
    pub(crate) fn machine_with_tree(keys: &[Word], seed: u64) -> (Machine, ElementArrays) {
        crate::explore::machine_with_tree(keys, seed)
    }

    fn run_sum(keys: &[Word], nprocs: usize) -> (Machine, ElementArrays) {
        let (mut machine, arrays) = machine_with_tree(keys, 7);
        for i in 0..nprocs {
            machine.add_process(Box::new(TreeSumProcess::new(arrays, Pid::new(i), 1)));
        }
        machine.run(&mut SyncScheduler, 10_000_000).unwrap();
        (machine, arrays)
    }

    fn assert_sizes_consistent(machine: &Machine, arrays: &ElementArrays, n: usize) {
        let mem = machine.memory();
        assert_eq!(mem.read(arrays.size(1)), n as Word, "root size is N");
        for i in 1..=n {
            let small = mem.read(arrays.child(i, Side::Small)) as usize;
            let big = mem.read(arrays.child(i, Side::Big)) as usize;
            let s = |j: usize| if j == 0 { 0 } else { mem.read(arrays.size(j)) };
            assert_eq!(
                mem.read(arrays.size(i)),
                s(small) + s(big) + 1,
                "size invariant at element {i}"
            );
        }
    }

    #[test]
    fn sums_random_tree_single_processor() {
        let keys: Vec<Word> = (0..31).map(|i| (i * 17) % 31).collect();
        let (m, a) = run_sum(&keys, 1);
        assert_sizes_consistent(&m, &a, 31);
    }

    #[test]
    fn sums_random_tree_many_processors() {
        let keys: Vec<Word> = (0..64).map(|i| (i * 29) % 64).collect();
        let (m, a) = run_sum(&keys, 64);
        assert_sizes_consistent(&m, &a, 64);
    }

    #[test]
    fn sums_degenerate_spine() {
        let keys: Vec<Word> = (0..16).collect();
        let (m, a) = run_sum(&keys, 4);
        assert_sizes_consistent(&m, &a, 16);
        // On the right spine, size of element i is n - i + 1.
        for i in 1..=16usize {
            assert_eq!(m.memory().read(a.size(i)), (16 - i + 1) as Word);
        }
    }

    #[test]
    fn single_element_tree() {
        let (m, a) = run_sum(&[42], 2);
        assert_eq!(m.memory().read(a.size(1)), 1);
    }

    #[test]
    fn pid_bits_split_processors_but_result_identical() {
        let keys: Vec<Word> = (0..32).map(|i| (i * 11) % 32).collect();
        let (m1, a1) = run_sum(&keys, 1);
        let (m2, a2) = run_sum(&keys, 32);
        for i in 1..=32usize {
            assert_eq!(
                m1.memory().read(a1.size(i)),
                m2.memory().read(a2.size(i)),
                "sizes must not depend on processor count"
            );
        }
    }

    #[test]
    fn wait_free_step_bound_single_processor() {
        // One processor alone sums the whole tree in O(N) operations.
        let n = 64usize;
        let keys: Vec<Word> = (0..n as Word).map(|i| (i * 23) % n as Word).collect();
        let (mut machine, arrays) = machine_with_tree(&keys, 3);
        machine.add_process(Box::new(TreeSumProcess::new(arrays, Pid::new(0), 1)));
        let report = machine.run(&mut SyncScheduler, 1_000_000).unwrap();
        assert!(
            report.metrics.steps_per_process[0] <= (8 * n + 16) as u64,
            "{} steps exceeds O(N)",
            report.metrics.steps_per_process[0]
        );
    }

    #[test]
    fn crashed_processor_does_not_block_others() {
        let keys: Vec<Word> = (0..32).map(|i| (i * 7) % 32).collect();
        let (mut machine, arrays) = machine_with_tree(&keys, 9);
        for i in 0..4 {
            machine.add_process(Box::new(TreeSumProcess::new(arrays, Pid::new(i), 1)));
        }
        let plan = pram::failure::FailurePlan::new()
            .crash_at(3, Pid::new(0))
            .crash_at(5, Pid::new(1));
        machine
            .run_with_failures(&mut SyncScheduler, &plan, 1_000_000)
            .unwrap();
        assert_sizes_consistent(&machine, &arrays, 32);
    }
}
